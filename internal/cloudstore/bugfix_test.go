package cloudstore

// Regression tests for the restore-path satellite bugfixes. Each test
// fails on the pre-fix code:
//
//   - escapeName used to leave '%' unescaped, so "a%2Fb" and "a/b"
//     collided on disk and ManifestNames un-escaped literal "%2F";
//   - handlePutManifest / the raw-upload manifest path used to update
//     the in-memory catalog before the durable disk write, advertising
//     manifests a restart would not have;
//   - the server accepted empty / "." / ".." manifest names.

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"efdedup/internal/chunk"
)

func TestEscapeNamePercentCollisionRegression(t *testing.T) {
	// The exact pre-fix collision: both names escaped to "a%2Fb".
	if escapeName("a%2Fb") == escapeName("a/b") {
		t.Fatalf("escapeName is not injective: %q and %q collide at %q",
			"a%2Fb", "a/b", escapeName("a/b"))
	}
	// A literal-percent name must round-trip exactly.
	for _, name := range []string{"a%2Fb", "100%", "%", "%%25", "a%5Cb:c", "%2F%2F"} {
		if got := unescapeName(escapeName(name)); got != name {
			t.Errorf("round trip %q -> %q -> %q", name, escapeName(name), got)
		}
	}
}

// TestEscapeNameInjectiveProperty drives random names over the hostile
// alphabet and checks (1) exact round trips, (2) no two distinct names
// share an escaped form, (3) escaped forms contain no path separators.
func TestEscapeNameInjectiveProperty(t *testing.T) {
	alphabet := []rune{'a', 'b', '%', '/', '\\', ':', '2', '5', 'F', 'C', 'A', '.', '-', 'é'}
	rng := rand.New(rand.NewSource(42))
	seen := make(map[string]string)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(12)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		name := sb.String()
		esc := escapeName(name)
		if got := unescapeName(esc); got != name {
			t.Fatalf("round trip %q -> %q -> %q", name, esc, got)
		}
		if strings.ContainsAny(esc, "/\\") {
			t.Fatalf("escaped form %q still has a path separator", esc)
		}
		if prev, ok := seen[esc]; ok && prev != name {
			t.Fatalf("collision: %q and %q both escape to %q", prev, name, esc)
		}
		seen[esc] = name
	}
}

// TestManifestNamesPreservesLiteralEscapes stores two once-colliding
// names through a real DiskStore and checks both files exist and list
// back exactly.
func TestManifestNamesPreservesLiteralEscapes(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids := []chunk.ID{chunk.Sum([]byte("x"))}
	ids2 := []chunk.ID{chunk.Sum([]byte("y"))}
	if err := d.PutManifest("a/b", ids); err != nil {
		t.Fatal(err)
	}
	if err := d.PutManifest("a%2Fb", ids2); err != nil {
		t.Fatal(err)
	}
	got1, err := d.GetManifest("a/b")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := d.GetManifest("a%2Fb")
	if err != nil {
		t.Fatal(err)
	}
	if got1[0] != ids[0] || got2[0] != ids2[0] {
		t.Fatal("colliding names overwrote each other")
	}
	names, err := d.ManifestNames()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a/b": true, "a%2Fb": true}
	if len(names) != 2 || !want[names[0]] || !want[names[1]] {
		t.Fatalf("ManifestNames = %v", names)
	}
}

func TestServerRejectsInvalidManifestNames(t *testing.T) {
	cl, srv := startCloud(t, Config{})
	ctx := context.Background()
	id := chunk.Sum([]byte("z"))
	for _, name := range []string{"", ".", ".."} {
		if err := cl.PutManifest(ctx, name, []chunk.ID{id}); !errors.Is(err, ErrProto) {
			t.Errorf("PutManifest(%q) = %v, want ErrProto", name, err)
		}
	}
	for _, name := range []string{".", ".."} {
		if _, err := cl.UploadRaw(ctx, name, []byte("data")); !errors.Is(err, ErrProto) {
			t.Errorf("UploadRaw(%q) = %v, want ErrProto", name, err)
		}
	}
	if srv.Stats().Manifests != 0 {
		t.Fatalf("rejected names still registered manifests: %+v", srv.Stats())
	}
}

// breakManifestDir replaces the store's manifests directory with a plain
// file so every subsequent durable manifest write fails (works even as
// root, where permission bits would not).
func breakManifestDir(t *testing.T, dir string) {
	t.Helper()
	mdir := filepath.Join(dir, "manifests")
	if err := os.RemoveAll(mdir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mdir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestPutManifestDurableFirst injects a disk failure into the manifest
// write and asserts the server does NOT advertise the manifest from
// memory — the durable write must come first.
func TestPutManifestDurableFirst(t *testing.T) {
	dir := t.TempDir()
	cl, srv := startCloud(t, Config{Dir: dir})
	ctx := context.Background()

	c := mkChunk("manifest body chunk")
	if _, err := cl.Upload(ctx, c); err != nil {
		t.Fatal(err)
	}
	breakManifestDir(t, dir)

	if err := cl.PutManifest(ctx, "phantom", []chunk.ID{c.ID}); err == nil {
		t.Fatal("PutManifest succeeded with a broken disk")
	}
	if _, err := cl.GetManifest(ctx, "phantom"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed durable write still advertised: GetManifest = %v, want ErrNotFound", err)
	}
	if st := srv.Stats(); st.Manifests != 0 {
		t.Fatalf("Manifests = %d after failed durable write, want 0", st.Manifests)
	}
}

// TestUploadRawManifestDurableFirst covers the same ordering bug on the
// mixed raw-upload path: chunks may land, but a manifest whose durable
// write failed must not exist.
func TestUploadRawManifestDurableFirst(t *testing.T) {
	dir := t.TempDir()
	cl, srv := startCloud(t, Config{Dir: dir})
	ctx := context.Background()

	breakManifestDir(t, dir)
	if _, err := cl.UploadRaw(ctx, "phantom-raw", []byte("some raw stream data")); err == nil {
		t.Fatal("UploadRaw succeeded with a broken manifest dir")
	}
	if _, err := cl.GetManifest(ctx, "phantom-raw"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed durable write still advertised: %v", err)
	}
	if st := srv.Stats(); st.Manifests != 0 {
		t.Fatalf("Manifests = %d, want 0", st.Manifests)
	}
}
