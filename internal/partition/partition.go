// Package partition implements the SNOD2 solvers of EF-dedup (paper
// Sec. III): algorithms that split N edge nodes into M disjoint D2-rings
// to minimize Σ U(P_s) + α Σ V(P_s).
//
// Provided algorithms:
//
//   - SmartGreedy — the SMART heuristic of Algorithm 2 / Eq. 13: repeat-
//     edly place the globally cheapest (node, ring) pair;
//   - SmartSequential — the literal Algorithm 2 pseudocode: visit nodes
//     in order, give each its cheapest ring (an ablation of SMART);
//   - EqualSize — SMART under a ⌈N/M⌉ ring-capacity constraint (the
//     load-balanced variant, provably optimal for K=2 pools);
//   - Matching — the hierarchical minimum-weight-matching accelerator of
//     Sec. III-C;
//   - NetworkOnly / DedupOnly — the paper's ablation baselines that drop
//     the storage or the network term from the greedy objective;
//   - RandomBalanced — a seeded random balanced assignment;
//   - BruteForce — exact enumeration for small N, used to measure the
//     heuristics' optimality gap.
package partition

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"efdedup/internal/model"
)

// Algorithm is a SNOD2 solver. Partition splits all sources of sys into at
// most m non-empty rings and returns ring membership lists (indices into
// sys.Sources).
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Partition solves SNOD2 for sys with at most m rings.
	Partition(sys *model.System, m int) ([][]int, error)
}

// Objective weights the two SNOD2 cost terms in a greedy step:
// delta = StorageWeight·ΔU + NetworkWeight·α·ΔV.
type Objective struct {
	StorageWeight float64
	NetworkWeight float64
}

// Standard objectives.
var (
	// FullObjective is the SNOD2 objective (SMART).
	FullObjective = Objective{StorageWeight: 1, NetworkWeight: 1}
	// NetworkOnlyObjective ignores storage (paper's "Network-only").
	NetworkOnlyObjective = Objective{StorageWeight: 0, NetworkWeight: 1}
	// DedupOnlyObjective ignores network cost (paper's "Dedup-only").
	DedupOnlyObjective = Objective{StorageWeight: 1, NetworkWeight: 0}
)

// delta evaluates the weighted cost increment of adding node idx to ring.
func (o Objective) delta(sys *model.System, ring *model.RingState, idx int) float64 {
	dU, dV := ring.DeltaParts(idx)
	return o.StorageWeight*dU + o.NetworkWeight*sys.Alpha*dV
}

// validate checks common preconditions and normalizes m.
func validate(sys *model.System, m int) (int, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if m <= 0 {
		return 0, fmt.Errorf("partition: ring count %d must be positive", m)
	}
	if m > len(sys.Sources) {
		m = len(sys.Sources)
	}
	return m, nil
}

// compact drops empty rings from a partition.
func compact(rings [][]int) [][]int {
	out := rings[:0]
	for _, r := range rings {
		if len(r) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Evaluate returns the SNOD2 cost of running algo on sys with m rings,
// along with the partition itself.
func Evaluate(algo Algorithm, sys *model.System, m int) ([][]int, model.PartitionCost, error) {
	rings, err := algo.Partition(sys, m)
	if err != nil {
		return nil, model.PartitionCost{}, err
	}
	if err := sys.ValidatePartition(rings); err != nil {
		return nil, model.PartitionCost{}, fmt.Errorf("partition: %s produced invalid partition: %w", algo.Name(), err)
	}
	return rings, sys.Cost(rings), nil
}

// --- SMART (global greedy, Eq. 13) --------------------------------------

// SmartGreedy repeatedly places the (remaining node, ring) pair with the
// smallest weighted cost increment, per Eq. 13 of the paper.
type SmartGreedy struct {
	// Obj defaults to FullObjective.
	Obj Objective
}

var _ Algorithm = SmartGreedy{}

// Name implements Algorithm.
func (g SmartGreedy) Name() string {
	switch g.Obj {
	case NetworkOnlyObjective:
		return "network-only"
	case DedupOnlyObjective:
		return "dedup-only"
	case FullObjective, Objective{}:
		return "smart"
	default:
		return fmt.Sprintf("smart(w=%.2g,%.2g)", g.Obj.StorageWeight, g.Obj.NetworkWeight)
	}
}

// Partition implements Algorithm.
func (g SmartGreedy) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	obj := g.Obj
	if obj == (Objective{}) {
		obj = FullObjective
	}
	rings := make([]*model.RingState, m)
	for i := range rings {
		rings[i] = model.NewRingState(sys)
	}
	remaining := make([]int, len(sys.Sources))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestDelta := math.Inf(1)
		bestNode, bestRing := -1, -1
		sawEmpty := false
		for r, ring := range rings {
			if ring.Len() == 0 {
				// All empty rings are interchangeable; evaluating one
				// is enough and keeps the step O(N·M_used).
				if sawEmpty {
					continue
				}
				sawEmpty = true
			}
			for _, v := range remaining {
				if d := obj.delta(sys, ring, v); d < bestDelta {
					bestDelta, bestNode, bestRing = d, v, r
				}
			}
		}
		rings[bestRing].Add(bestNode)
		for i, v := range remaining {
			if v == bestNode {
				remaining[i] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
				break
			}
		}
	}
	out := make([][]int, 0, m)
	for _, r := range rings {
		if r.Len() > 0 {
			out = append(out, r.Members())
		}
	}
	return out, nil
}

// --- SMART (sequential pseudocode variant) -------------------------------

// SmartSequential is the literal Algorithm 2 pseudocode: nodes are visited
// in index order and each is placed into its currently cheapest ring. It
// is M× cheaper per node than SmartGreedy but order-sensitive — the
// ablation benchmarks quantify the quality gap.
type SmartSequential struct {
	Obj Objective
}

var _ Algorithm = SmartSequential{}

// Name implements Algorithm.
func (SmartSequential) Name() string { return "smart-seq" }

// Partition implements Algorithm.
func (g SmartSequential) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	obj := g.Obj
	if obj == (Objective{}) {
		obj = FullObjective
	}
	rings := make([]*model.RingState, m)
	for i := range rings {
		rings[i] = model.NewRingState(sys)
	}
	for v := range sys.Sources {
		bestDelta := math.Inf(1)
		bestRing := -1
		sawEmpty := false
		for r, ring := range rings {
			if ring.Len() == 0 {
				if sawEmpty {
					continue
				}
				sawEmpty = true
			}
			if d := obj.delta(sys, ring, v); d < bestDelta {
				bestDelta, bestRing = d, r
			}
		}
		rings[bestRing].Add(v)
	}
	out := make([][]int, 0, m)
	for _, r := range rings {
		if r.Len() > 0 {
			out = append(out, r.Members())
		}
	}
	return out, nil
}

// --- Equal-size SMART ----------------------------------------------------

// EqualSize is SMART with a ⌈N/M⌉ per-ring capacity, producing the
// load-balanced partitions of Sec. III's equal-size analysis.
type EqualSize struct {
	Obj Objective
}

var _ Algorithm = EqualSize{}

// Name implements Algorithm.
func (EqualSize) Name() string { return "smart-equal" }

// Partition implements Algorithm.
func (g EqualSize) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	obj := g.Obj
	if obj == (Objective{}) {
		obj = FullObjective
	}
	capacity := (len(sys.Sources) + m - 1) / m
	rings := make([]*model.RingState, m)
	for i := range rings {
		rings[i] = model.NewRingState(sys)
	}
	remaining := make([]int, len(sys.Sources))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		bestDelta := math.Inf(1)
		bestNode, bestRing := -1, -1
		sawEmpty := false
		for r, ring := range rings {
			if ring.Len() >= capacity {
				continue
			}
			if ring.Len() == 0 {
				if sawEmpty {
					continue
				}
				sawEmpty = true
			}
			for _, v := range remaining {
				if d := obj.delta(sys, ring, v); d < bestDelta {
					bestDelta, bestNode, bestRing = d, v, r
				}
			}
		}
		if bestRing < 0 {
			return nil, errors.New("partition: equal-size: no ring has capacity (unreachable)")
		}
		rings[bestRing].Add(bestNode)
		for i, v := range remaining {
			if v == bestNode {
				remaining[i] = remaining[len(remaining)-1]
				remaining = remaining[:len(remaining)-1]
				break
			}
		}
	}
	out := make([][]int, 0, m)
	for _, r := range rings {
		if r.Len() > 0 {
			out = append(out, r.Members())
		}
	}
	return out, nil
}

// --- Random baseline -----------------------------------------------------

// RandomBalanced assigns nodes to rings round-robin after a seeded
// shuffle: the "no intelligence" baseline.
type RandomBalanced struct {
	Seed int64
}

var _ Algorithm = RandomBalanced{}

// Name implements Algorithm.
func (RandomBalanced) Name() string { return "random" }

// Partition implements Algorithm.
func (g RandomBalanced) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	n := len(sys.Sources)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// xorshift-based deterministic shuffle (avoids math/rand dependency
	// churn and keeps results stable for a given seed).
	state := uint64(g.Seed)*2862933555777941757 + 3037000493
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	for i := n - 1; i > 0; i-- {
		j := next(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	rings := make([][]int, m)
	for i, v := range perm {
		rings[i%m] = append(rings[i%m], v)
	}
	return compact(rings), nil
}

// --- Brute force ---------------------------------------------------------

// BruteForceLimit caps the exact solver's input size; partition counts
// grow as Bell numbers.
const BruteForceLimit = 12

// BruteForce enumerates every partition into at most m parts and returns
// the optimum. It refuses systems larger than BruteForceLimit sources.
type BruteForce struct{}

var _ Algorithm = BruteForce{}

// Name implements Algorithm.
func (BruteForce) Name() string { return "optimal" }

// Partition implements Algorithm.
func (BruteForce) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	n := len(sys.Sources)
	if n > BruteForceLimit {
		return nil, fmt.Errorf("partition: brute force limited to %d sources, got %d", BruteForceLimit, n)
	}
	assign := make([]int, n)
	best := math.Inf(1)
	var bestAssign []int
	var recurse func(i, parts int)
	recurse = func(i, parts int) {
		if i == n {
			rings := make([][]int, parts)
			for v, p := range assign {
				rings[p] = append(rings[p], v)
			}
			if c := sys.Cost(rings).Aggregate; c < best {
				best = c
				bestAssign = append(bestAssign[:0], assign...)
			}
			return
		}
		for p := 0; p < parts; p++ {
			assign[i] = p
			recurse(i+1, parts)
		}
		if parts < m {
			assign[i] = parts
			recurse(i+1, parts+1)
		}
	}
	recurse(0, 0)
	parts := 0
	for _, p := range bestAssign {
		if p+1 > parts {
			parts = p + 1
		}
	}
	rings := make([][]int, parts)
	for v, p := range bestAssign {
		rings[p] = append(rings[p], v)
	}
	return rings, nil
}

// sortRings canonicalizes a partition for stable test comparison: members
// ascending within rings, rings ordered by first member.
func sortRings(rings [][]int) [][]int {
	for _, r := range rings {
		sort.Ints(r)
	}
	sort.Slice(rings, func(i, j int) bool {
		if len(rings[i]) == 0 || len(rings[j]) == 0 {
			return len(rings[j]) == 0
		}
		return rings[i][0] < rings[j][0]
	})
	return rings
}
