package partition

import (
	"math"
	"sort"

	"efdedup/internal/model"
)

// Matching is the hierarchical minimum-weight-matching accelerator of
// Sec. III-C: starting from singleton partitions, each round computes
// pairwise merge weights, keeps the Theta fraction of cheapest disjoint
// matches, and merges them — reducing the partition count geometrically
// until at most m rings remain. Weight of a pair is the aggregate cost of
// the merged ring, U(P_a ∪ P_b) + α·V(P_a ∪ P_b), as the paper defines.
type Matching struct {
	// Theta ∈ (0,1] is the fraction of candidate matches preserved per
	// round; defaults to 0.5.
	Theta float64
}

var _ Algorithm = Matching{}

// Name implements Algorithm.
func (Matching) Name() string { return "matching" }

// Partition implements Algorithm.
func (g Matching) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	theta := g.Theta
	if theta <= 0 || theta > 1 {
		theta = 0.5
	}
	parts := make([]*model.RingState, len(sys.Sources))
	for i := range parts {
		parts[i] = model.NewRingState(sys)
		parts[i].Add(i)
	}
	for len(parts) > m {
		type cand struct {
			a, b   int
			weight float64
		}
		cands := make([]cand, 0, len(parts)*(len(parts)-1)/2)
		for a := 0; a < len(parts); a++ {
			for b := a + 1; b < len(parts); b++ {
				merged := parts[a].Merge(parts[b])
				cands = append(cands, cand{a: a, b: b, weight: merged.Cost()})
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].weight < cands[j].weight })

		// Keep at most θ·⌊P/2⌋ disjoint matches (at least one, and never
		// past the target ring count).
		limit := int(theta * float64(len(parts)/2))
		if limit < 1 {
			limit = 1
		}
		if over := len(parts) - m; limit > over {
			limit = over
		}
		used := make([]bool, len(parts))
		var merged []*model.RingState
		taken := 0
		for _, c := range cands {
			if taken >= limit {
				break
			}
			if used[c.a] || used[c.b] {
				continue
			}
			used[c.a], used[c.b] = true, true
			merged = append(merged, parts[c.a].Merge(parts[c.b]))
			taken++
		}
		for i, p := range parts {
			if !used[i] {
				merged = append(merged, p)
			}
		}
		parts = merged
	}
	out := make([][]int, len(parts))
	for i, p := range parts {
		out[i] = p.Members()
	}
	return out, nil
}

// MatchingRounds estimates the number of rounds the matcher needs for n
// partitions reduced by factor (1-θ/2) per round down to m — the
// o(log(N/M)) convergence claim of Sec. III-C, exposed for tests.
func MatchingRounds(n, m int, theta float64) int {
	if theta <= 0 || theta > 1 {
		theta = 0.5
	}
	if n <= m {
		return 0
	}
	shrink := 1 - theta/2
	return int(math.Ceil(math.Log(float64(m)/float64(n)) / math.Log(shrink)))
}
