package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"efdedup/internal/model"
)

// fourNodeSystem builds the canonical tension of Fig. 1: two content
// groups {0,2} and {1,3} (pool A vs pool B) crossing two sites {0,1} and
// {2,3} with expensive inter-site links.
func fourNodeSystem(alpha float64) *model.System {
	cross := 100.0
	local := 1.0
	cost := [][]float64{
		{0, local, cross, cross},
		{local, 0, cross, cross},
		{cross, cross, 0, local},
		{cross, cross, local, 0},
	}
	return &model.System{
		PoolSizes: []float64{2000, 2000},
		Sources: []model.Source{
			{ID: 0, Rate: 10, Probs: []float64{1, 0}},
			{ID: 1, Rate: 10, Probs: []float64{0, 1}},
			{ID: 2, Rate: 10, Probs: []float64{1, 0}},
			{ID: 3, Rate: 10, Probs: []float64{0, 1}},
		},
		T:       100,
		Gamma:   1,
		Alpha:   alpha,
		NetCost: cost,
	}
}

// ringOf finds which ring contains v.
func ringOf(rings [][]int, v int) int {
	for i, r := range rings {
		for _, x := range r {
			if x == v {
				return i
			}
		}
	}
	return -1
}

func sameRing(rings [][]int, a, b int) bool {
	ra := ringOf(rings, a)
	return ra >= 0 && ra == ringOf(rings, b)
}

func randomSystem(rng *rand.Rand, n int) *model.System {
	k := 2 + rng.Intn(3)
	pools := make([]float64, k)
	for i := range pools {
		pools[i] = 500 + rng.Float64()*5000
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := rng.Float64() * 20
			cost[i][j], cost[j][i] = c, c
		}
	}
	srcs := make([]model.Source, n)
	for i := range srcs {
		probs := make([]float64, k)
		rem := 1.0
		for p := range probs {
			probs[p] = rem * rng.Float64()
			rem -= probs[p]
		}
		srcs[i] = model.Source{ID: i, Rate: 1 + rng.Float64()*20, Probs: probs}
	}
	return &model.System{
		PoolSizes: pools,
		Sources:   srcs,
		T:         10 + rng.Float64()*50,
		Gamma:     1 + float64(rng.Intn(2)),
		Alpha:     rng.Float64() * 0.5,
		NetCost:   cost,
	}
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		SmartGreedy{},
		SmartSequential{},
		EqualSize{},
		Matching{},
		SmartGreedy{Obj: NetworkOnlyObjective},
		SmartGreedy{Obj: DedupOnlyObjective},
		RandomBalanced{Seed: 42},
		Portfolio{},
		Refined{Base: SmartGreedy{}},
	}
}

func TestAlgorithmsProduceValidPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sys := randomSystem(rng, 9)
	for _, algo := range allAlgorithms() {
		t.Run(algo.Name(), func(t *testing.T) {
			rings, err := algo.Partition(sys, 3)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.ValidatePartition(rings); err != nil {
				t.Fatal(err)
			}
			if len(rings) > 3 {
				t.Fatalf("%d rings, want <= 3", len(rings))
			}
		})
	}
}

func TestValidateRejectsBadInput(t *testing.T) {
	sys := fourNodeSystem(0.1)
	if _, err := (SmartGreedy{}).Partition(sys, 0); err == nil {
		t.Error("m=0 accepted")
	}
	bad := fourNodeSystem(0.1)
	bad.T = 0
	if _, err := (SmartGreedy{}).Partition(bad, 2); err == nil {
		t.Error("invalid system accepted")
	}
}

// TestSmartRespectsAlphaTradeoff: with α=0 SMART must group by content
// similarity; with huge α it must group by site locality.
func TestSmartRespectsAlphaTradeoff(t *testing.T) {
	// Storage-dominated: correlated pairs {0,2} and {1,3} share a ring.
	sys := fourNodeSystem(0)
	rings, err := SmartGreedy{}.Partition(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRing(rings, 0, 2) || !sameRing(rings, 1, 3) {
		t.Errorf("α=0: got %v, want content grouping {0,2},{1,3}", rings)
	}

	// Network-dominated: site-local pairs {0,1} and {2,3} share a ring.
	sys = fourNodeSystem(1000)
	rings, err = SmartGreedy{}.Partition(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRing(rings, 0, 1) || !sameRing(rings, 2, 3) {
		t.Errorf("α→∞: got %v, want site grouping {0,1},{2,3}", rings)
	}
}

// TestBaselinesIgnoreTheirTerm: the Network-only baseline must pick the
// site grouping and Dedup-only the content grouping, regardless of α.
func TestBaselinesIgnoreTheirTerm(t *testing.T) {
	sys := fourNodeSystem(0.1)

	rings, err := SmartGreedy{Obj: NetworkOnlyObjective}.Partition(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton rings have zero network cost, so network-only greedy may
	// leave fewer than two non-trivial rings; what it must never do is
	// pay the cross-site link.
	cost := sys.Cost(rings)
	if cost.Network > 10*1000*2 { // any cross-site pairing would exceed this
		t.Errorf("network-only paid network cost %v with rings %v", cost.Network, rings)
	}

	rings, err = SmartGreedy{Obj: DedupOnlyObjective}.Partition(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRing(rings, 0, 2) || !sameRing(rings, 1, 3) {
		t.Errorf("dedup-only: got %v, want content grouping", rings)
	}
}

// structuredSystem mirrors the paper's evaluation setting: geo sites with
// cheap intra-site links and expensive inter-site links, plus content
// clusters assigned orthogonally to geography (Sec. V-B's "10 geographical
// groups" layout).
func structuredSystem(rng *rand.Rand, n, sites, contentGroups int, alpha float64) *model.System {
	pools := make([]float64, contentGroups)
	for i := range pools {
		pools[i] = 3000
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if i%sites == j%sites {
				cost[i][j] = 1
			} else {
				cost[i][j] = 20
			}
		}
	}
	srcs := make([]model.Source, n)
	for i := range srcs {
		g := rng.Intn(contentGroups)
		probs := make([]float64, contentGroups)
		for p := range probs {
			if p == g {
				probs[p] = 0.8
			} else {
				probs[p] = 0.2 / float64(contentGroups-1)
			}
		}
		srcs[i] = model.Source{ID: i, Rate: 5 + rng.Float64()*10, Probs: probs}
	}
	return &model.System{
		PoolSizes: pools, Sources: srcs,
		T: 60, Gamma: 2, Alpha: alpha, NetCost: cost,
	}
}

// TestSmartBeatsBaselinesOnStructuredInstances reproduces the paper's
// central claim (Fig. 6(c), Fig. 7): on geo/content-structured instances
// with a middle α, SMART's aggregate cost beats both single-minded
// baselines. All three run with the same local-search polish, each under
// its own objective, so the comparison isolates the objective choice.
func TestSmartBeatsBaselinesOnStructuredInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const trials = 10
	var sumNet, sumDedup float64
	for trial := 0; trial < trials; trial++ {
		sys := structuredSystem(rng, 20, 5, 3, 0.1)
		_, smart, err := Evaluate(Portfolio{}, sys, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, netOnly, err := Evaluate(Refined{
			Base: SmartGreedy{Obj: NetworkOnlyObjective}, Obj: NetworkOnlyObjective,
		}, sys, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, dedupOnly, err := Evaluate(Refined{
			Base: SmartGreedy{Obj: DedupOnlyObjective}, Obj: DedupOnlyObjective,
		}, sys, 5)
		if err != nil {
			t.Fatal(err)
		}
		if smart.Aggregate > netOnly.Aggregate*1.05 {
			t.Errorf("trial %d: SMART %v lost to network-only %v", trial, smart.Aggregate, netOnly.Aggregate)
		}
		if smart.Aggregate > dedupOnly.Aggregate*1.05 {
			t.Errorf("trial %d: SMART %v lost to dedup-only %v", trial, smart.Aggregate, dedupOnly.Aggregate)
		}
		sumNet += netOnly.Aggregate / smart.Aggregate
		sumDedup += dedupOnly.Aggregate / smart.Aggregate
	}
	// The paper reports baselines paying 1.26-1.31x SMART's cost; require
	// a clear average margin in the same direction.
	if avg := sumNet / trials; avg < 1.1 {
		t.Errorf("network-only/SMART average ratio %.3f, want >= 1.1", avg)
	}
	if avg := sumDedup / trials; avg < 1.1 {
		t.Errorf("dedup-only/SMART average ratio %.3f, want >= 1.1", avg)
	}
}

func TestSmartNearOptimalOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	worstGreedy, worstRefined := 1.0, 1.0
	for trial := 0; trial < 10; trial++ {
		sys := randomSystem(rng, 7)
		_, smart, err := Evaluate(SmartGreedy{}, sys, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, refined, err := Evaluate(Refined{Base: SmartGreedy{}}, sys, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := Evaluate(BruteForce{}, sys, 3)
		if err != nil {
			t.Fatal(err)
		}
		if smart.Aggregate < opt.Aggregate-1e-6 || refined.Aggregate < opt.Aggregate-1e-6 {
			t.Fatalf("heuristic beat 'optimal' %v: brute force is wrong", opt.Aggregate)
		}
		if r := smart.Aggregate / opt.Aggregate; r > worstGreedy {
			worstGreedy = r
		}
		if r := refined.Aggregate / opt.Aggregate; r > worstRefined {
			worstRefined = r
		}
	}
	if worstGreedy > 1.5 {
		t.Errorf("greedy optimality gap %.3f, want <= 1.5 on small random instances", worstGreedy)
	}
	if worstRefined > 1.3 {
		t.Errorf("refined optimality gap %.3f, want <= 1.3", worstRefined)
	}
	if worstRefined > worstGreedy+1e-9 {
		t.Errorf("local search worsened the worst case: %.3f vs %.3f", worstRefined, worstGreedy)
	}
}

// TestRefinementNeverWorsens: Refined(X) costs at most X for any base.
func TestRefinementNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		sys := randomSystem(rng, 9)
		for _, base := range []Algorithm{SmartGreedy{}, RandomBalanced{Seed: int64(trial)}} {
			_, plain, err := Evaluate(base, sys, 3)
			if err != nil {
				t.Fatal(err)
			}
			_, polished, err := Evaluate(Refined{Base: base}, sys, 3)
			if err != nil {
				t.Fatal(err)
			}
			if polished.Aggregate > plain.Aggregate*(1+1e-9) {
				t.Errorf("%s: refinement worsened %v -> %v", base.Name(), plain.Aggregate, polished.Aggregate)
			}
		}
	}
}

func TestEqualSizeCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sys := randomSystem(rng, 10)
	rings, err := EqualSize{}.Partition(sys, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ValidatePartition(rings); err != nil {
		t.Fatal(err)
	}
	for _, r := range rings {
		if len(r) > 4 { // ceil(10/3)
			t.Fatalf("ring of size %d exceeds capacity 4", len(r))
		}
	}
}

func TestMatchingReachesTargetCount(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sys := randomSystem(rng, 12)
	for _, m := range []int{1, 2, 5, 12} {
		rings, err := Matching{}.Partition(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.ValidatePartition(rings); err != nil {
			t.Fatal(err)
		}
		if len(rings) != m {
			t.Errorf("matching produced %d rings for m=%d", len(rings), m)
		}
	}
}

func TestMatchingQualityComparableToGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		sys := randomSystem(rng, 12)
		_, mc, err := Evaluate(Matching{}, sys, 4)
		if err != nil {
			t.Fatal(err)
		}
		_, gc, err := Evaluate(SmartGreedy{}, sys, 4)
		if err != nil {
			t.Fatal(err)
		}
		if mc.Aggregate > gc.Aggregate*1.5 {
			t.Errorf("matching cost %v vs greedy %v (> 1.5x)", mc.Aggregate, gc.Aggregate)
		}
	}
}

func TestMatchingRounds(t *testing.T) {
	if r := MatchingRounds(16, 16, 0.5); r != 0 {
		t.Errorf("no reduction needed but %d rounds", r)
	}
	r := MatchingRounds(512, 16, 0.5)
	if r <= 0 || r > 30 {
		t.Errorf("rounds = %d for 512→16, want small positive (log-convergence)", r)
	}
}

func TestRandomBalancedDeterministicAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sys := randomSystem(rng, 11)
	a1, err := RandomBalanced{Seed: 7}.Partition(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RandomBalanced{Seed: 7}.Partition(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := sortRings(a1), sortRings(a2)
	for i := range s1 {
		if len(s1[i]) != len(s2[i]) {
			t.Fatal("same seed produced different partitions")
		}
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatal("same seed produced different partitions")
			}
		}
	}
	min, max := len(sys.Sources), 0
	for _, r := range a1 {
		if len(r) < min {
			min = len(r)
		}
		if len(r) > max {
			max = len(r)
		}
	}
	if max-min > 1 {
		t.Errorf("imbalanced random partition: sizes %d..%d", min, max)
	}
}

func TestBruteForceRefusesLargeInput(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sys := randomSystem(rng, BruteForceLimit+1)
	if _, err := (BruteForce{}).Partition(sys, 3); err == nil {
		t.Fatal("oversized brute force accepted")
	}
}

// TestReductionMatchesKCut validates Theorem 2 executably: the SNOD2
// objective of the reduced instance differs from the k-cut objective by a
// partition-independent constant.
func TestReductionMatchesKCut(t *testing.T) {
	g := Graph{
		Vertices: 5,
		Edges: []Edge{
			{A: 0, B: 1, Weight: 3},
			{A: 1, B: 2, Weight: 5},
			{A: 2, B: 3, Weight: 2},
			{A: 3, B: 4, Weight: 7},
			{A: 0, B: 4, Weight: 1},
			{A: 1, B: 3, Weight: 4},
		},
	}
	sys, err := ReduceKCut(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	partitions := [][][]int{
		{{0, 1, 2, 3, 4}},
		{{0, 1}, {2, 3, 4}},
		{{0}, {1}, {2}, {3}, {4}},
		{{0, 2, 4}, {1, 3}},
		{{0, 1, 2}, {3}, {4}},
	}
	base := sys.Cost(partitions[0]).Aggregate - g.KCutObjective(partitions[0])
	for _, p := range partitions[1:] {
		diff := sys.Cost(p).Aggregate - g.KCutObjective(p)
		if math.Abs(diff-base) > 1e-6*(1+math.Abs(base)) {
			t.Errorf("partition %v: SNOD2-KCut offset %v, want constant %v", p, diff, base)
		}
	}
	// And therefore the SNOD2 optimum is a minimum k-cut.
	rings, err := BruteForce{}.Partition(sys, 2)
	if err != nil {
		t.Fatal(err)
	}
	bestCut := math.Inf(1)
	for _, p := range partitions {
		if len(p) <= 2 {
			if c := g.KCutObjective(p); c < bestCut {
				bestCut = c
			}
		}
	}
	if got := g.KCutObjective(rings); got > bestCut+1e-9 {
		t.Errorf("SNOD2 optimum has cut %v, sampled best 2-partition has %v", got, bestCut)
	}
}

func TestReduceKCutValidation(t *testing.T) {
	g := Graph{Vertices: 2, Edges: []Edge{{A: 0, B: 1, Weight: 1}}}
	if _, err := ReduceKCut(g, 0); err == nil {
		t.Error("c=0 accepted")
	}
	if _, err := ReduceKCut(g, 1); err == nil {
		t.Error("c=1 accepted")
	}
	if _, err := ReduceKCut(Graph{Vertices: 0}, 0.5); err == nil {
		t.Error("empty graph accepted")
	}
	bad := Graph{Vertices: 2, Edges: []Edge{{A: 0, B: 5, Weight: 1}}}
	if _, err := ReduceKCut(bad, 0.5); err == nil {
		t.Error("out-of-range edge accepted")
	}
	neg := Graph{Vertices: 2, Edges: []Edge{{A: 0, B: 1, Weight: -1}}}
	if _, err := ReduceKCut(neg, 0.5); err == nil {
		t.Error("negative weight accepted")
	}
}

// TestPropertyPartitionersAlwaysValid fuzzes every algorithm with random
// systems and ring counts.
func TestPropertyPartitionersAlwaysValid(t *testing.T) {
	algos := allAlgorithms()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(n)
		sys := randomSystem(rng, n)
		for _, algo := range algos {
			rings, err := algo.Partition(sys, m)
			if err != nil {
				return false
			}
			if sys.ValidatePartition(rings) != nil {
				return false
			}
			if len(rings) > m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleRingMatchesGlobalDedup: m=1 must put everything together.
func TestSingleRingMatchesGlobalDedup(t *testing.T) {
	sys := fourNodeSystem(0.1)
	for _, algo := range allAlgorithms() {
		rings, err := algo.Partition(sys, 1)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if len(rings) != 1 || len(rings[0]) != 4 {
			t.Errorf("%s: m=1 produced %v", algo.Name(), rings)
		}
	}
}
