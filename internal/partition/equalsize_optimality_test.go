package partition

import (
	"math"
	"math/rand"
	"testing"

	"efdedup/internal/model"
)

// equalPartitions enumerates all partitions of n elements into m groups of
// exactly n/m, up to group order.
func equalPartitions(n, m int) [][][]int {
	size := n / m
	var out [][][]int
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	var recurse func(remaining []int, acc [][]int)
	recurse = func(remaining []int, acc [][]int) {
		if len(remaining) == 0 {
			cp := make([][]int, len(acc))
			for i, g := range acc {
				cp[i] = append([]int(nil), g...)
			}
			out = append(out, cp)
			return
		}
		// Anchor the smallest remaining element to kill group-order
		// symmetry, then choose its size-1 companions.
		first := remaining[0]
		rest := remaining[1:]
		var choose func(start, k int, picked []int)
		choose = func(start, k int, picked []int) {
			if k == 0 {
				group := append([]int{first}, picked...)
				var next []int
				used := make(map[int]bool, len(group))
				for _, g := range group {
					used[g] = true
				}
				for _, r := range rest {
					if !used[r] {
						next = append(next, r)
					}
				}
				recurse(next, append(acc, group))
				return
			}
			for i := start; i <= len(rest)-k; i++ {
				picked = append(picked, rest[i])
				choose(i+1, k-1, picked)
				picked = picked[:len(picked)-1]
			}
		}
		choose(0, size-1, nil)
	}
	recurse(items, nil)
	return out
}

// twoPoolRandomSystem builds a random K=2 system (the regime where the
// paper claims the equal-size greedy is optimal).
func twoPoolRandomSystem(rng *rand.Rand, n int) *model.System {
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := rng.Float64() * 10
			cost[i][j], cost[j][i] = c, c
		}
	}
	srcs := make([]model.Source, n)
	for i := range srcs {
		p := rng.Float64() * 0.9
		srcs[i] = model.Source{ID: i, Rate: 5 + rng.Float64()*20, Probs: []float64{p, 0.9 - p}}
	}
	return &model.System{
		PoolSizes: []float64{800 + rng.Float64()*800, 800 + rng.Float64()*800},
		Sources:   srcs,
		T:         20,
		Gamma:     1,
		Alpha:     rng.Float64() * 0.2,
		NetCost:   cost,
	}
}

// TestEqualSizeNearOptimalForTwoPools probes the paper's Sec. III claim
// that the equal-size greedy is "proven optimal when K = 2", by exhaustive
// comparison on small instances.
//
// Reproduction finding: the claim does NOT hold for arbitrary K=2
// instances — with random rates the literal greedy lands within a few
// percent of the enumerated optimum but misses it, both with and without
// network costs, so the paper's proof must rest on additional unstated
// assumptions (e.g. identical rates). What we can assert, and do here, is
// the empirical bound: within 6% of optimal at α=0 and within 12% in
// general on these instances, with the local-search polish never making
// things worse. EXPERIMENTS.md records this deviation.
func TestEqualSizeNearOptimalForTwoPools(t *testing.T) {
	const n, m = 6, 2
	parts := equalPartitions(n, m)

	optimum := func(sys *model.System) float64 {
		best := math.Inf(1)
		for _, p := range parts {
			if c := sys.Cost(p).Aggregate; c < best {
				best = c
			}
		}
		return best
	}

	// Regime A: storage-only (α=0), where the paper's optimality proof
	// plausibly lives. The greedy must be essentially exact.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		sys := twoPoolRandomSystem(rng, n)
		sys.Alpha = 0
		best := optimum(sys)
		_, greedy, err := Evaluate(EqualSize{}, sys, m)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Aggregate < best-1e-6 {
			t.Fatalf("greedy beat exhaustive optimum: enumeration is wrong")
		}
		if greedy.Aggregate > best*1.06 {
			t.Errorf("α=0 trial %d: greedy %.2f vs optimum %.2f (>6%% gap)",
				trial, greedy.Aggregate, best)
		}
	}

	// Regime B: general K=2 with network costs. Bounded gap; local search
	// recovers most of it.
	var worstGreedy, worstRefined float64 = 1, 1
	for trial := 0; trial < 8; trial++ {
		sys := twoPoolRandomSystem(rng, n)
		best := optimum(sys)
		_, greedy, err := Evaluate(EqualSize{}, sys, m)
		if err != nil {
			t.Fatal(err)
		}
		_, refined, err := Evaluate(Refined{Base: EqualSize{}}, sys, m)
		if err != nil {
			t.Fatal(err)
		}
		// Note: Refined may legally beat the equal-size optimum by using
		// unequal rings; clamp ratios at 1 for the gap statistic.
		if r := greedy.Aggregate / best; r > worstGreedy {
			worstGreedy = r
		}
		if r := refined.Aggregate / best; r > worstRefined {
			worstRefined = r
		}
	}
	if worstGreedy > 1.12 {
		t.Errorf("general K=2: greedy gap %.3f, want <= 1.12", worstGreedy)
	}
	if worstRefined > worstGreedy+1e-9 {
		t.Errorf("local search worsened the gap: %.3f vs %.3f", worstRefined, worstGreedy)
	}
}

func TestEqualPartitionsEnumeration(t *testing.T) {
	// 6 elements into 2 groups of 3: C(5,2) = 10 partitions.
	parts := equalPartitions(6, 2)
	if len(parts) != 10 {
		t.Fatalf("enumerated %d partitions, want 10", len(parts))
	}
	for _, p := range parts {
		seen := map[int]bool{}
		for _, g := range p {
			if len(g) != 3 {
				t.Fatalf("group size %d, want 3", len(g))
			}
			for _, v := range g {
				if seen[v] {
					t.Fatal("duplicate element across groups")
				}
				seen[v] = true
			}
		}
		if len(seen) != 6 {
			t.Fatal("partition does not cover all elements")
		}
	}
}
