package partition

import (
	"fmt"
	"math"

	"efdedup/internal/model"
)

// Graph is an undirected weighted graph used by the Theorem 2 reduction.
type Graph struct {
	// Vertices is the vertex count; vertices are 0..Vertices-1.
	Vertices int
	// Edges lists undirected weighted edges.
	Edges []Edge
}

// Edge is one undirected weighted edge.
type Edge struct {
	A, B   int
	Weight float64
}

// KCutObjective evaluates the minimum-k-cut objective of a partition: the
// summed weight of edges whose endpoints land in different parts.
func (g Graph) KCutObjective(rings [][]int) float64 {
	part := make(map[int]int)
	for p, ring := range rings {
		for _, v := range ring {
			part[v] = p
		}
	}
	cut := 0.0
	for _, e := range g.Edges {
		if part[e.A] != part[e.B] {
			cut += e.Weight
		}
	}
	return cut
}

// ReduceKCut builds the SNOD2 instance of the Theorem 2 NP-hardness proof
// from a graph: one chunk pool per edge with size w/(1-c)², characteristic
// probabilities placed so that every incident (source, pool) miss
// probability g equals exactly c, and zero network cost. For any two
// partitions R1, R2 of the vertices,
//
//	SNOD2(R1) - SNOD2(R2) = KCut(R1) - KCut(R2),
//
// i.e. the SNOD2 objective equals the k-cut objective plus a
// partition-independent constant — so solving this SNOD2 instance solves
// minimum k-cut, proving SNOD2 NP-hard.
func ReduceKCut(g Graph, c float64) (*model.System, error) {
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("partition: reduction constant c=%v must be in (0,1)", c)
	}
	if g.Vertices <= 0 {
		return nil, fmt.Errorf("partition: graph needs vertices")
	}
	for _, e := range g.Edges {
		if e.A < 0 || e.A >= g.Vertices || e.B < 0 || e.B >= g.Vertices || e.A == e.B {
			return nil, fmt.Errorf("partition: bad edge %+v", e)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("partition: edge %+v needs positive weight", e)
		}
	}

	k := len(g.Edges)
	pools := make([]float64, k)
	for i, e := range g.Edges {
		pools[i] = e.Weight / ((1 - c) * (1 - c))
	}

	// Choose a uniform per-pool draw fraction ε = p/s such that
	// (1-ε)^(R·T) = c for every incident (source, pool) pair, with R=1
	// and a common T. ε must keep every source's probability vector sum
	// ≤ 1: Σ_incident p = ε·Σ_incident s ≤ 1.
	maxIncident := 0.0
	for v := 0; v < g.Vertices; v++ {
		sum := 0.0
		for i, e := range g.Edges {
			if e.A == v || e.B == v {
				sum += pools[i]
			}
		}
		if sum > maxIncident {
			maxIncident = sum
		}
	}
	if maxIncident == 0 {
		return nil, fmt.Errorf("partition: graph has no edges")
	}
	eps := 1 / maxIncident
	if eps > 0.5 {
		eps = 0.5 // keep log1p well-conditioned
	}
	T := math.Log(c) / math.Log1p(-eps)

	sources := make([]model.Source, g.Vertices)
	cost := make([][]float64, g.Vertices)
	for v := range sources {
		probs := make([]float64, k)
		for i, e := range g.Edges {
			if e.A == v || e.B == v {
				probs[i] = eps * pools[i]
			}
		}
		sources[v] = model.Source{ID: v, Rate: 1, Probs: probs}
		cost[v] = make([]float64, g.Vertices)
	}
	sys := &model.System{
		PoolSizes: pools,
		Sources:   sources,
		T:         T,
		Gamma:     1,
		Alpha:     0, // the reduction uses zero network cost
		NetCost:   cost,
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("partition: reduction produced invalid system: %w", err)
	}
	return sys, nil
}
