package partition

import (
	"math"
	"sort"

	"efdedup/internal/model"
)

// GroupPack is a coarse-grained SNOD2 seed: it clusters sources by their
// dominant chunk pool (sources sharing a dominant pool are the ones whose
// joint deduplication saves the most storage), then greedily packs whole
// clusters into rings by minimum weighted cost increment.
//
// Packing at cluster granularity fixes the failure mode of node-level
// greedy seeds on content-structured instances: a single-node local search
// cannot discover that two whole clusters should swap rings, but the
// packer chooses cluster combinations directly — trading storage
// (clusters stay intact) against network cost (clusters placed with
// low-latency companions). It is used as one of the Portfolio seeds and
// is a useful standalone heuristic when K is moderate.
type GroupPack struct {
	// Obj defaults to FullObjective.
	Obj Objective
}

var _ Algorithm = GroupPack{}

// Name implements Algorithm.
func (GroupPack) Name() string { return "group-pack" }

// dominantPool returns the index of the source's largest probability, or
// -1 for an all-zero vector.
func dominantPool(src model.Source) int {
	best, bestIdx := 0.0, -1
	for k, p := range src.Probs {
		if p > best {
			best, bestIdx = p, k
		}
	}
	return bestIdx
}

// Partition implements Algorithm.
func (g GroupPack) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	obj := g.Obj
	if obj == (Objective{}) {
		obj = FullObjective
	}

	// Cluster sources by dominant pool; noise-only sources go solo.
	clusters := make(map[int][]int)
	var units [][]int
	for i, src := range sys.Sources {
		k := dominantPool(src)
		if k < 0 {
			units = append(units, []int{i})
			continue
		}
		clusters[k] = append(clusters[k], i)
	}
	keys := make([]int, 0, len(clusters))
	for k := range clusters {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		units = append(units, clusters[k])
	}
	// Place large units first: they constrain the solution most.
	sort.SliceStable(units, func(i, j int) bool { return len(units[i]) > len(units[j]) })

	rings := make([]*model.RingState, m)
	for i := range rings {
		rings[i] = model.NewRingState(sys)
	}
	// unitDelta evaluates the weighted cost increment of adding a whole
	// unit to a ring.
	unitDelta := func(ring *model.RingState, unit []int) float64 {
		before := obj.StorageWeight*ring.Storage() + obj.NetworkWeight*sys.Alpha*ring.Network()
		probe := ring.Clone()
		for _, v := range unit {
			probe.Add(v)
		}
		after := obj.StorageWeight*probe.Storage() + obj.NetworkWeight*sys.Alpha*probe.Network()
		return after - before
	}
	remaining := units
	for len(remaining) > 0 {
		bestDelta := math.Inf(1)
		bestUnit, bestRing := -1, -1
		sawEmpty := false
		for r, ring := range rings {
			if ring.Len() == 0 {
				if sawEmpty {
					continue
				}
				sawEmpty = true
			}
			for u, unit := range remaining {
				if d := unitDelta(rings[r], unit); d < bestDelta {
					bestDelta, bestUnit, bestRing = d, u, r
				}
			}
			_ = ring
		}
		for _, v := range remaining[bestUnit] {
			rings[bestRing].Add(v)
		}
		remaining[bestUnit] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	out := make([][]int, 0, m)
	for _, r := range rings {
		if r.Len() > 0 {
			out = append(out, r.Members())
		}
	}
	return out, nil
}
