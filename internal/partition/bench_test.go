package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"efdedup/internal/model"
)

func benchSystem(b *testing.B, n int) *model.System {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return structuredSystem(rng, n, 10, 5, 0.1)
}

// BenchmarkSolvers times every SNOD2 solver on the same instance and
// reports its solution quality relative to the SMART portfolio — the
// speed/quality ablation behind choosing Portfolio as the default.
func BenchmarkSolvers(b *testing.B) {
	sys := benchSystem(b, 40)
	const m = 8
	_, ref, err := Evaluate(Portfolio{}, sys, m)
	if err != nil {
		b.Fatal(err)
	}
	solvers := []Algorithm{
		SmartGreedy{},
		SmartSequential{},
		EqualSize{},
		Matching{},
		Refined{Base: SmartGreedy{}},
		Portfolio{},
		RandomBalanced{Seed: 1},
	}
	for _, s := range solvers {
		b.Run(s.Name(), func(b *testing.B) {
			var cost model.PartitionCost
			for i := 0; i < b.N; i++ {
				_, cost, err = Evaluate(s, sys, m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost.Aggregate/ref.Aggregate, "x-vs-portfolio")
		})
	}
}

// BenchmarkSmartGreedyScale measures the greedy's O(N²M) growth.
func BenchmarkSmartGreedyScale(b *testing.B) {
	for _, n := range []int{20, 60, 120} {
		sys := benchSystem(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (SmartGreedy{}).Partition(sys, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMatchingTheta sweeps the matcher's θ: larger θ merges more per
// round (fewer rounds, coarser choices).
func BenchmarkMatchingTheta(b *testing.B) {
	sys := benchSystem(b, 40)
	for _, theta := range []float64{0.25, 0.5, 0.9} {
		b.Run(fmt.Sprintf("theta=%.2f", theta), func(b *testing.B) {
			var cost model.PartitionCost
			for i := 0; i < b.N; i++ {
				var err error
				_, cost, err = Evaluate(Matching{Theta: theta}, sys, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost.Aggregate, "aggregate")
		})
	}
}

// BenchmarkGammaAblation sweeps the replication factor γ in the cost
// model: higher γ keeps more lookups local (lower V) at higher storage
// fan-out in the real store.
func BenchmarkGammaAblation(b *testing.B) {
	for _, gamma := range []float64{1, 2, 3} {
		rng := rand.New(rand.NewSource(1))
		sys := structuredSystem(rng, 40, 10, 5, 0.1)
		sys.Gamma = gamma
		b.Run(fmt.Sprintf("gamma=%.0f", gamma), func(b *testing.B) {
			var cost model.PartitionCost
			for i := 0; i < b.N; i++ {
				var err error
				_, cost, err = Evaluate(SmartGreedy{}, sys, 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cost.Network, "V")
		})
	}
}
