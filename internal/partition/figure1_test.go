package partition

import (
	"testing"

	"efdedup/internal/model"
)

// figure1System encodes the paper's Fig. 1 scenario: five edge nodes in
// two edge clouds ({1,2,3} and {4,5}, 0-indexed {0,1,2} and {3,4}), where
// content similarity crosses the clouds — nodes {0,2,4} share one chunk
// pool and {1,3} another. Partitioning by content alone maximizes dedup
// but pays the expensive inter-cloud link; partitioning by cloud alone
// wastes storage.
func figure1System(alpha float64) *model.System {
	const cheap, expensive = 1.0, 30.0
	site := []int{0, 0, 0, 1, 1}
	n := 5
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i == j {
				continue
			}
			if site[i] == site[j] {
				cost[i][j] = cheap
			} else {
				cost[i][j] = expensive
			}
		}
	}
	// Content groups {0,2,4} and {1,3}.
	group := []int{0, 1, 0, 1, 0}
	srcs := make([]model.Source, n)
	for i := range srcs {
		probs := make([]float64, 2)
		probs[group[i]] = 0.9
		srcs[i] = model.Source{ID: i, Rate: 50, Probs: probs}
	}
	return &model.System{
		PoolSizes: []float64{600, 600},
		Sources:   srcs,
		T:         10,
		Gamma:     1,
		Alpha:     alpha,
		NetCost:   cost,
	}
}

// TestFigure1Tension reproduces the worked example of the paper's Fig. 1:
// the storage-optimal and network-optimal partitions differ, and SMART
// tracks the trade-off as α moves.
func TestFigure1Tension(t *testing.T) {
	// The two canonical partitions of the figure.
	contentSplit := [][]int{{0, 2, 4}, {1, 3}} // "16 unique chunks", crosses clouds
	cloudSplit := [][]int{{0, 1, 2}, {3, 4}}   // minimal network, "21 unique chunks"

	sys := figure1System(0.1)
	cContent := sys.Cost(contentSplit)
	cCloud := sys.Cost(cloudSplit)

	// The figure's premise: content split stores less but networks more.
	if cContent.Storage >= cCloud.Storage {
		t.Fatalf("content split stores %.0f >= cloud split %.0f — premise broken",
			cContent.Storage, cCloud.Storage)
	}
	if cContent.Network <= cCloud.Network {
		t.Fatalf("content split networks %.1f <= cloud split %.1f — premise broken",
			cContent.Network, cCloud.Network)
	}

	// Storage-dominated regime: SMART must recover the content split.
	rings, _, err := Evaluate(Portfolio{}, figure1System(0.0001), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRing(rings, 0, 2) || !sameRing(rings, 0, 4) || !sameRing(rings, 1, 3) {
		t.Errorf("α→0: got %v, want content grouping {0,2,4},{1,3}", rings)
	}

	// Network-dominated regime: SMART must not pay the inter-cloud link.
	rings, cost, err := Evaluate(Portfolio{}, figure1System(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	sysHi := figure1System(100)
	if cost.Network > sysHi.Cost(cloudSplit).Network+1e-6 {
		t.Errorf("α→∞: SMART pays network %.2f, cloud split pays %.2f: %v",
			cost.Network, sysHi.Cost(cloudSplit).Network, rings)
	}

	// Middle regime: SMART's aggregate beats BOTH canonical extremes or
	// matches the better one — the figure's "optimal partitioning must
	// account for both" claim.
	mid := figure1System(0.5)
	_, smartCost, err := Evaluate(Portfolio{}, mid, 2)
	if err != nil {
		t.Fatal(err)
	}
	bestCanonical := mid.Cost(contentSplit).Aggregate
	if c := mid.Cost(cloudSplit).Aggregate; c < bestCanonical {
		bestCanonical = c
	}
	if smartCost.Aggregate > bestCanonical*1.001 {
		t.Errorf("middle α: SMART %.1f worse than best canonical split %.1f",
			smartCost.Aggregate, bestCanonical)
	}
}
