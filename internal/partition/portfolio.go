package partition

import (
	"math"

	"efdedup/internal/model"
)

// Portfolio is the production SMART solver: it seeds the local search from
// several greedy runs — the full-objective greedy plus the two
// single-term greedies, whose solutions bracket the network/storage
// trade-off — refines each under the full SNOD2 objective, and returns
// the cheapest result. Multi-start costs a constant factor and removes the
// poor local optima a single greedy pass can fall into.
type Portfolio struct {
	// Seeds default to SmartGreedy under the full, network-only and
	// dedup-only objectives plus the matching heuristic.
	Seeds []Algorithm
	// MaxPasses is forwarded to the local search.
	MaxPasses int
}

var _ Algorithm = Portfolio{}

// Name implements Algorithm.
func (Portfolio) Name() string { return "smart-portfolio" }

// Partition implements Algorithm.
func (p Portfolio) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	seeds := p.Seeds
	if len(seeds) == 0 {
		seeds = []Algorithm{
			SmartGreedy{},
			SmartGreedy{Obj: NetworkOnlyObjective},
			SmartGreedy{Obj: DedupOnlyObjective},
			Matching{},
			// EqualSize always opens the full ring budget, giving the
			// local search a granular seed that single-node moves can
			// polish; greedy seeds often collapse into few large rings
			// that moves alone cannot split.
			EqualSize{},
			// GroupPack places whole content clusters, which single-node
			// moves cannot rearrange once merged.
			GroupPack{},
		}
	}
	best := math.Inf(1)
	var bestRings [][]int
	var firstErr error
	for _, seed := range seeds {
		refined := Refined{Base: seed, MaxPasses: p.MaxPasses}
		rings, err := refined.Partition(sys, m)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if c := sys.Cost(rings).Aggregate; c < best {
			best = c
			bestRings = rings
		}
	}
	if bestRings == nil {
		return nil, firstErr
	}
	return bestRings, nil
}
