package partition

import (
	"efdedup/internal/model"
)

// Refined wraps any base algorithm with a single-node local search: while
// some node can move to another ring (or to a fresh ring, when fewer than
// m are in use) with a strict cost decrease, apply the best such move.
// This is an extension beyond the paper's Algorithm 2 — the ablation
// benches quantify how much it recovers of the greedy's optimality gap.
type Refined struct {
	// Base produces the initial partition; required.
	Base Algorithm
	// Obj defaults to FullObjective.
	Obj Objective
	// MaxPasses bounds the number of full sweeps; defaults to 16.
	MaxPasses int
}

var _ Algorithm = Refined{}

// Name implements Algorithm.
func (r Refined) Name() string { return r.Base.Name() + "+ls" }

// weightedCost evaluates a ring under the objective weights.
func weightedCost(sys *model.System, ring *model.RingState, obj Objective) float64 {
	return obj.StorageWeight*ring.Storage() + obj.NetworkWeight*sys.Alpha*ring.Network()
}

// Partition implements Algorithm.
func (r Refined) Partition(sys *model.System, m int) ([][]int, error) {
	m, err := validate(sys, m)
	if err != nil {
		return nil, err
	}
	base, err := r.Base.Partition(sys, m)
	if err != nil {
		return nil, err
	}
	obj := r.Obj
	if obj == (Objective{}) {
		obj = FullObjective
	}
	maxPasses := r.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 16
	}

	// Materialize ring states, padding with empty rings up to m so moves
	// can open new rings.
	rings := make([]*model.RingState, 0, m)
	ringOf := make(map[int]int, len(sys.Sources))
	for _, members := range base {
		rs := model.NewRingState(sys)
		for _, v := range members {
			rs.Add(v)
			ringOf[v] = len(rings)
		}
		rings = append(rings, rs)
	}
	for len(rings) < m {
		rings = append(rings, model.NewRingState(sys))
	}

	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := range sys.Sources {
			cur := ringOf[v]
			if rings[cur].Len() == 1 {
				// Moving a singleton to an empty ring is a no-op;
				// moving it elsewhere is still considered below.
			}
			// Cost released by leaving the current ring.
			without := rings[cur].Clone()
			without.Remove(v)
			release := weightedCost(sys, without, obj) - weightedCost(sys, rings[cur], obj)

			bestGain := -1e-9
			bestRing := -1
			sawEmpty := false
			for t, target := range rings {
				if t == cur {
					continue
				}
				if target.Len() == 0 {
					if sawEmpty || rings[cur].Len() == 1 {
						continue // empty→empty move is a no-op
					}
					sawEmpty = true
				}
				gain := release + obj.delta(sys, target, v)
				if gain < bestGain {
					bestGain = gain
					bestRing = t
				}
			}
			if bestRing >= 0 {
				rings[cur].Remove(v)
				rings[bestRing].Add(v)
				ringOf[v] = bestRing
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	out := make([][]int, 0, m)
	for _, rs := range rings {
		if rs.Len() > 0 {
			out = append(out, rs.Members())
		}
	}
	return out, nil
}
