package netem

import (
	"bytes"
	"context"
	"io"
	"net"
	"testing"
	"time"

	"efdedup/internal/transport"
)

// pipePair returns a connected pipe with the writer side shaped.
func pipePair(link Link) (shaped net.Conn, peer net.Conn) {
	a, b := net.Pipe()
	return Shape(a, link), b
}

func TestShapeDelaysDelivery(t *testing.T) {
	const delay = 60 * time.Millisecond
	shaped, peer := pipePair(Link{Delay: delay})
	defer shaped.Close()
	defer peer.Close()

	start := time.Now()
	go shaped.Write([]byte("ping")) //nolint:errcheck

	buf := make([]byte, 4)
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < delay {
		t.Fatalf("delivery after %v, want >= %v", elapsed, delay)
	}
	if elapsed > 10*delay {
		t.Fatalf("delivery took %v, far beyond the configured %v", elapsed, delay)
	}
}

func TestShapeBandwidthSerializes(t *testing.T) {
	// 100 KiB at 1 MiB/s should take about 100 ms.
	const size = 100 * 1024
	link := Link{Bandwidth: 1 << 20}
	shaped, peer := pipePair(link)
	defer shaped.Close()
	defer peer.Close()

	payload := make([]byte, size)
	start := time.Now()
	go func() {
		shaped.Write(payload) //nolint:errcheck
	}()
	got := make([]byte, size)
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("transfer finished in %v, faster than the 1 MiB/s link allows", elapsed)
	}
}

func TestShapePreservesContentAndOrder(t *testing.T) {
	shaped, peer := pipePair(Link{Delay: time.Millisecond})
	defer shaped.Close()
	defer peer.Close()

	var want bytes.Buffer
	go func() {
		for i := 0; i < 20; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 50)
			shaped.Write(msg) //nolint:errcheck
		}
	}()
	for i := 0; i < 20; i++ {
		want.Write(bytes.Repeat([]byte{byte(i)}, 50))
	}
	got := make([]byte, want.Len())
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("shaped stream reordered or corrupted data")
	}
}

func TestShapeZeroLinkPassThrough(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	s := Shape(a, Link{})
	if s != a {
		t.Fatal("zero link should return the original conn")
	}
	a.Close()
}

func TestShapedCloseUnblocksWriters(t *testing.T) {
	shaped, peer := pipePair(Link{Delay: time.Hour}) // never delivers
	defer peer.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Fill the queue until Write blocks, then expect ErrClosed.
		for i := 0; i < shapedQueueLen+10; i++ {
			if _, err := shaped.Write([]byte("x")); err != nil {
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	shaped.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer still blocked after Close")
	}
}

func TestTopologyLinkLookup(t *testing.T) {
	topo := NewTopology(Link{Delay: 10 * time.Millisecond})
	topo.SetSymmetricLink("edgeA", "cloud", Link{Delay: 25 * time.Millisecond})

	if l := topo.LinkBetween("edgeA", "cloud"); l.Delay != 25*time.Millisecond {
		t.Errorf("edgeA→cloud delay = %v, want 25ms", l.Delay)
	}
	if l := topo.LinkBetween("cloud", "edgeA"); l.Delay != 25*time.Millisecond {
		t.Errorf("cloud→edgeA delay = %v, want 25ms", l.Delay)
	}
	// Unspecified inter-site pair falls back.
	if l := topo.LinkBetween("edgeA", "edgeB"); l.Delay != 10*time.Millisecond {
		t.Errorf("fallback delay = %v, want 10ms", l.Delay)
	}
	// Intra-site with no explicit link is unshaped.
	if l := topo.LinkBetween("edgeA", "edgeA"); l.Delay != 0 {
		t.Errorf("intra-site delay = %v, want 0", l.Delay)
	}
}

func TestTopologySiteRegistration(t *testing.T) {
	topo := NewTopology(Link{})
	topo.Register("addr1", "siteX")
	s, err := topo.Site("addr1")
	if err != nil || s != "siteX" {
		t.Fatalf("Site = %q, %v", s, err)
	}
	if _, err := topo.Site("nope"); err == nil {
		t.Fatal("unknown address resolved")
	}
}

func TestNetworkForShapesDials(t *testing.T) {
	mem := transport.NewMemNetwork()
	topo := NewTopology(Link{})
	topo.SetLink("edge", "cloud", Link{Delay: 50 * time.Millisecond})

	cloudNet := topo.NetworkFor("cloud", mem)
	edgeNet := topo.NetworkFor("edge", mem)

	l, err := cloudNet.Listen("cloud-svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := transport.NewServer()
	srv.Handle("ping", func(b []byte) ([]byte, error) { return b, nil })
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	conn, err := edgeNet.Dial(context.Background(), "cloud-svc")
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient(conn)
	defer client.Close()

	start := time.Now()
	if _, err := client.Call(context.Background(), "ping", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if rtt := time.Since(start); rtt < 50*time.Millisecond {
		t.Fatalf("call RTT %v, want >= 50ms link delay", rtt)
	}

	if n := topo.BytesSent("edge", "cloud"); n == 0 {
		t.Error("no bytes counted on edge→cloud link")
	}
	if n := topo.TotalInterSiteBytes(); n == 0 {
		t.Error("TotalInterSiteBytes = 0")
	}
	topo.ResetCounters()
	if n := topo.TotalInterSiteBytes(); n != 0 {
		t.Errorf("counters not reset: %d", n)
	}
}

func TestNetworkDialUnknownSite(t *testing.T) {
	mem := transport.NewMemNetwork()
	topo := NewTopology(Link{})
	nw := topo.NetworkFor("edge", mem)
	if _, err := nw.Dial(context.Background(), "unregistered"); err == nil {
		t.Fatal("dial to unregistered address succeeded")
	}
}

func TestIntraSiteDialUnshapedButCounted(t *testing.T) {
	mem := transport.NewMemNetwork()
	topo := NewTopology(Link{Delay: time.Hour}) // fallback would hang if applied
	nw := topo.NetworkFor("edge", mem)

	l, err := nw.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	srv := transport.NewServer()
	srv.Handle("ping", func(b []byte) ([]byte, error) { return b, nil })
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	conn, err := nw.Dial(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient(conn)
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := client.Call(ctx, "ping", nil); err != nil {
		t.Fatalf("intra-site call: %v", err)
	}
	if n := topo.BytesSent("edge", "edge"); n == 0 {
		t.Error("intra-site traffic not counted")
	}
	if n := topo.TotalInterSiteBytes(); n != 0 {
		t.Errorf("intra-site traffic counted as inter-site: %d", n)
	}
}
