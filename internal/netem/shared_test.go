package netem

import (
	"context"
	"sync"
	"testing"
	"time"

	"efdedup/internal/transport"
)

// TestSharedUplinkContention: connections crossing the same site pair
// share one serialization budget, so two parallel transfers take about as
// long as one twice the size — the provisioned-uplink behaviour the
// cloud-only experiments depend on.
func TestSharedUplinkContention(t *testing.T) {
	const (
		bw      = 2 << 20   // 2 MiB/s
		payload = 512 << 10 // per connection
	)
	mem := transport.NewMemNetwork()
	topo := NewTopology(Link{})
	topo.SetLink("edge", "cloud", Link{Bandwidth: bw})
	cloudNet := topo.NetworkFor("cloud", mem)
	edgeNet := topo.NetworkFor("edge", mem)

	srv := transport.NewServer()
	srv.Handle("echo", func(b []byte) ([]byte, error) { return b, nil })
	l, err := cloudNet.Listen("echo")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l) //nolint:errcheck
	defer srv.Close()

	clients := make([]*transport.Client, 2)
	for i := range clients {
		conn, err := edgeNet.Dial(context.Background(), "echo")
		if err != nil {
			t.Fatal(err)
		}
		cl := transport.NewClient(conn)
		defer cl.Close()
		clients[i] = cl
	}

	big := make([]byte, payload)
	start := time.Now()
	var wg sync.WaitGroup
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *transport.Client) {
			defer wg.Done()
			if _, err := cl.Call(context.Background(), "echo", big); err != nil {
				t.Error(err)
			}
		}(cl)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// 2×512 KiB of requests through a shared 2 MiB/s uplink serialize for
	// ≥ ~500 ms (responses return unshaped). With private per-connection
	// links this would finish in ~250 ms.
	if elapsed < 400*time.Millisecond {
		t.Fatalf("two parallel 512 KiB calls finished in %v — uplink not shared", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("calls took %v, far beyond the expected ~500 ms serialization", elapsed)
	}
}
