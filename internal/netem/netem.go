// Package netem emulates wide-area network conditions for the EF-dedup
// testbed, standing in for the NetEm-based traffic control the paper used
// on its OpenStack/EC2 deployment.
//
// A Link describes one logical path (propagation delay plus a serialization
// bandwidth). Shape wraps a net.Conn so everything written to it is
// delivered only after the link's delay, with writes serialized at the
// link's bandwidth — the classic store-and-forward link model:
//
//	txStart   = max(now, end of previous transmission)
//	txEnd     = txStart + bytes/bandwidth
//	deliverAt = txEnd + delay
//
// A Topology groups node addresses into named sites (edge clouds, the
// central cloud) and assigns a Link per site pair. Topology.NetworkFor
// returns a transport.Network view for one site: connections dialed
// through it are shaped with the site-pair link, with the full round-trip
// delay charged on the request direction — the right model for RPC, where
// a call cannot complete before request and response both cross the WAN.
// Per-site-pair byte counters make measured network cost observable.
package netem

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Link describes the service characteristics of one logical network path.
type Link struct {
	// Delay is the round-trip propagation delay of the path.
	Delay time.Duration
	// Bandwidth is the serialization rate in bytes per second; zero
	// means unlimited.
	Bandwidth float64
}

// queue sizing for shaped connections: a bounded in-flight buffer models a
// socket send buffer and provides back-pressure.
const shapedQueueLen = 256

type packet struct {
	data      []byte
	deliverAt time.Time
}

// linkState is the serialization state of one physical link. Connections
// sharing a linkState contend for its bandwidth — the model of many edge
// nodes pushing through one provisioned uplink.
type linkState struct {
	mu       sync.Mutex
	nextFree time.Time // when the link finishes its current transmission
}

// shapedConn delays and rate-limits writes to the underlying connection.
type shapedConn struct {
	net.Conn
	link  Link
	state *linkState // shared across conns on the same physical link

	mu      sync.Mutex
	sendErr error

	queue chan packet
	done  chan struct{}
	wg    sync.WaitGroup

	onBytes func(int) // optional byte counter callback
}

// Shape wraps conn so that writes experience the link's delay and
// bandwidth (private to this connection). Reads pass through untouched.
// Closing the returned connection flushes nothing: in-flight shaped data
// is dropped, mimicking a failing link.
func Shape(conn net.Conn, link Link) net.Conn {
	return shapeWithCounter(conn, link, &linkState{}, nil)
}

func shapeWithCounter(conn net.Conn, link Link, state *linkState, onBytes func(int)) net.Conn {
	if link.Delay <= 0 && link.Bandwidth <= 0 {
		if onBytes == nil {
			return conn
		}
		return &countingConn{Conn: conn, onBytes: onBytes}
	}
	if state == nil {
		state = &linkState{}
	}
	s := &shapedConn{
		Conn:    conn,
		link:    link,
		state:   state,
		queue:   make(chan packet, shapedQueueLen),
		done:    make(chan struct{}),
		onBytes: onBytes,
	}
	s.wg.Add(1)
	go s.pump()
	return s
}

func (s *shapedConn) pump() {
	defer s.wg.Done()
	for {
		select {
		case p := <-s.queue:
			if wait := time.Until(p.deliverAt); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-s.done:
					timer.Stop()
					return
				}
			}
			if _, err := s.Conn.Write(p.data); err != nil {
				s.mu.Lock()
				if s.sendErr == nil {
					s.sendErr = err
				}
				s.mu.Unlock()
				return
			}
		case <-s.done:
			return
		}
	}
}

// Write implements net.Conn. It returns immediately once the data is
// accepted into the shaped queue (back-pressure applies when the queue is
// full) and reports any asynchronous delivery failure on a later call.
func (s *shapedConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	if s.sendErr != nil {
		err := s.sendErr
		s.mu.Unlock()
		return 0, err
	}
	s.mu.Unlock()
	now := time.Now()
	txDur := time.Duration(0)
	if s.link.Bandwidth > 0 {
		txDur = time.Duration(float64(len(p)) / s.link.Bandwidth * float64(time.Second))
	}
	s.state.mu.Lock()
	txStart := s.state.nextFree
	if txStart.Before(now) {
		txStart = now
	}
	txEnd := txStart.Add(txDur)
	s.state.nextFree = txEnd
	s.state.mu.Unlock()

	data := make([]byte, len(p))
	copy(data, p)
	select {
	case s.queue <- packet{data: data, deliverAt: txEnd.Add(s.link.Delay)}:
	case <-s.done:
		return 0, net.ErrClosed
	}
	if s.onBytes != nil {
		s.onBytes(len(p))
	}
	return len(p), nil
}

// Close implements net.Conn.
func (s *shapedConn) Close() error {
	s.mu.Lock()
	select {
	case <-s.done:
		s.mu.Unlock()
		return nil
	default:
		close(s.done)
	}
	s.mu.Unlock()
	err := s.Conn.Close()
	s.wg.Wait()
	return err
}

// countingConn only counts written bytes.
type countingConn struct {
	net.Conn
	onBytes func(int)
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.onBytes(n)
	}
	return n, err
}

// ErrUnknownSite is returned when an address or site was never registered.
var ErrUnknownSite = errors.New("netem: unknown site")

// Topology assigns node addresses to sites and links to site pairs.
// It is safe for concurrent use.
type Topology struct {
	mu       sync.Mutex
	siteOf   map[string]string  // listen address -> site name
	links    map[[2]string]Link // (fromSite, toSite) -> link
	fallback Link
	bytes    map[[2]string]int64 // observed bytes per (fromSite, toSite)
	// shapers holds one serialization state per directed site pair, so
	// every connection crossing the same pair contends for the link's
	// bandwidth (a shared uplink), instead of each connection enjoying a
	// private link.
	shapers map[[2]string]*linkState
}

// NewTopology returns a topology whose unspecified site pairs use the
// fallback link. A zero fallback means unshaped.
func NewTopology(fallback Link) *Topology {
	return &Topology{
		siteOf:   make(map[string]string),
		links:    make(map[[2]string]Link),
		bytes:    make(map[[2]string]int64),
		shapers:  make(map[[2]string]*linkState),
		fallback: fallback,
	}
}

// SetFallback replaces the default link used for unspecified site pairs.
func (t *Topology) SetFallback(l Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fallback = l
}

// SetLink sets the link used from site a to site b (one direction).
func (t *Topology) SetLink(from, to string, l Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]string{from, to}] = l
}

// SetSymmetricLink sets the same link in both directions.
func (t *Topology) SetSymmetricLink(a, b string, l Link) {
	t.SetLink(a, b, l)
	t.SetLink(b, a, l)
}

// Register maps a listen address to its site. The cluster harness calls
// this when it places a service.
func (t *Topology) Register(addr, site string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.siteOf[addr] = site
}

// Site returns the site a registered address belongs to.
func (t *Topology) Site(addr string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.siteOf[addr]
	if !ok {
		return "", fmt.Errorf("%w: address %q", ErrUnknownSite, addr)
	}
	return s, nil
}

// LinkBetween returns the link used from one site to another. Intra-site
// traffic with no explicit link is unshaped.
func (t *Topology) LinkBetween(from, to string) Link {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.links[[2]string{from, to}]; ok {
		return l
	}
	if from == to {
		return Link{}
	}
	return t.fallback
}

func (t *Topology) addBytes(from, to string, n int) {
	t.mu.Lock()
	t.bytes[[2]string{from, to}] += int64(n)
	t.mu.Unlock()
}

// BytesSent reports the bytes observed from one site to another through
// shaped dials.
func (t *Topology) BytesSent(from, to string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytes[[2]string{from, to}]
}

// TotalInterSiteBytes sums observed traffic whose endpoints are in
// different sites.
func (t *Topology) TotalInterSiteBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for key, n := range t.bytes {
		if key[0] != key[1] {
			total += n
		}
	}
	return total
}

// ResetCounters zeroes the byte counters.
func (t *Topology) ResetCounters() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bytes = make(map[[2]string]int64)
}

// Network is a site-local view of an underlying transport network: dials
// are shaped by the topology's site-pair links.
type Network struct {
	topo  *Topology
	site  string
	inner networkInner
}

// networkInner is the subset of transport.Network that netem needs; it is
// structurally identical so both transport.TCPNetwork and
// transport.MemNetwork satisfy it without an import cycle.
type networkInner interface {
	Listen(addr string) (net.Listener, error)
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// NetworkFor returns the shaped network view for a node located at the
// given site.
func (t *Topology) NetworkFor(site string, inner networkInner) *Network {
	return &Network{topo: t, site: site, inner: inner}
}

// Listen binds addr on the inner network and registers it at this view's
// site.
func (n *Network) Listen(addr string) (net.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	n.topo.Register(l.Addr().String(), n.site)
	return l, nil
}

// Dial connects to addr, shaping the connection with the link between this
// view's site and the target's site. The link's full round-trip delay is
// charged on the request path.
func (n *Network) Dial(ctx context.Context, addr string) (net.Conn, error) {
	toSite, err := n.topo.Site(addr)
	if err != nil {
		return nil, err
	}
	conn, err := n.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	link := n.topo.LinkBetween(n.site, toSite)
	from, to := n.site, toSite
	state := n.topo.shaperFor(from, to)
	return shapeWithCounter(conn, link, state, func(b int) { n.topo.addBytes(from, to, b) }), nil
}

// shaperFor returns the shared serialization state of a directed site
// pair, creating it on first use.
func (t *Topology) shaperFor(from, to string) *linkState {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := [2]string{from, to}
	s, ok := t.shapers[key]
	if !ok {
		s = &linkState{}
		t.shapers[key] = s
	}
	return s
}
