package agent

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/faultnet"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// deadCloudClient returns a client whose server is already gone.
func deadCloudClient(t *testing.T) *cloudstore.Client {
	t.Helper()
	nw := transport.NewMemNetwork()
	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	cl, err := cloudstore.Dial(context.Background(), nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	srv.Close()
	return cl
}

// TestUploadFailureSurfacesAndDrains: with the cloud gone, the async
// uploader must report the failure and the pipeline must terminate
// instead of blocking on its queue.
func TestUploadFailureSurfacesAndDrains(t *testing.T) {
	a, err := New(Config{
		Name:  "doomed",
		Mode:  ModeCloudAssisted,
		Cloud: deadCloudClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := duplicatedData(1, 256*1024)
	done := make(chan error, 1)
	go func() {
		_, err := a.ProcessBytes(context.Background(), "f", data)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("processing succeeded against a dead cloud")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline hung on a dead cloud")
	}
}

// deadRingIndex is a cluster whose only member never existed.
func deadRingIndex(t *testing.T, tb *testbed) *kvstore.Cluster {
	t.Helper()
	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:     []string{"kv-gone"},
		Network:     tb.nw,
		CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// TestIndexFailureDowngradesToCloud: ring mode with every index node dead
// degrades to cloud-assisted lookups instead of failing the stream, and
// records the downgrade in the report.
func TestIndexFailureDowngradesToCloud(t *testing.T) {
	tb := newTestbed(t, 1)
	a, err := New(Config{
		Name:  "no-index",
		Mode:  ModeRing,
		Index: deadRingIndex(t, tb),
		Cloud: tb.cloudClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.ProcessBytes(context.Background(), "f", duplicatedData(2, 64*1024))
	if err != nil {
		t.Fatalf("degraded processing failed: %v", err)
	}
	if rep.Downgrades == 0 || rep.DegradedLookups == 0 {
		t.Fatalf("downgrade not recorded: %+v", rep)
	}
	if !a.Degraded() {
		t.Fatal("agent not marked degraded after ring outage")
	}
	// The backup is still restorable despite the dead index.
	got, err := tb.cloudClient(t).Restore(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, duplicatedData(2, 64*1024)) {
		t.Fatal("degraded-mode restore is not byte-identical")
	}
}

// TestIndexFailureSurfacesWhenStrict: StrictRing restores the old
// behaviour — every index node dead fails the stream with an index/lookup
// error.
func TestIndexFailureSurfacesWhenStrict(t *testing.T) {
	tb := newTestbed(t, 1)
	a, err := New(Config{
		Name:       "no-index",
		Mode:       ModeRing,
		Index:      deadRingIndex(t, tb),
		Cloud:      tb.cloudClient(t),
		StrictRing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.ProcessBytes(context.Background(), "f", duplicatedData(2, 64*1024))
	if err == nil {
		t.Fatal("strict processing succeeded without a reachable index")
	}
	if !strings.Contains(err.Error(), "lookup") && !strings.Contains(err.Error(), "index") {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

// gatedReader serves the head of a stream, then runs gate (which may
// block and mutate the world) exactly once before serving the tail — a
// deterministic way to inject a fault mid-stream after the first uploads
// are durable.
type gatedReader struct {
	head, tail *bytes.Reader
	gate       func()
	fired      bool
}

func (g *gatedReader) Read(p []byte) (int, error) {
	if g.head.Len() > 0 {
		return g.head.Read(p)
	}
	if !g.fired {
		g.fired = true
		g.gate()
	}
	return g.tail.Read(p)
}

// TestUploadFailureAccountingMatchesCloud is the regression test for the
// enqueue-time accounting bug: UploadedChunks/UploadedBytes used to be
// counted when a batch was *queued*, so a stream whose uploader died
// mid-flight reported chunks the cloud never received. The fixed pipeline
// counts on the cloud's acknowledgement, so even for an aborted stream
// the report matches the store's contents exactly. It also checks the two
// companion invariants: an aborted stream records no manifest, and the
// ring index never references a chunk the cloud lacks.
func TestUploadFailureAccountingMatchesCloud(t *testing.T) {
	ctx := context.Background()
	nw := transport.NewMemNetwork()
	fabric := faultnet.NewFabric(faultnet.Config{Seed: 1})
	defer fabric.Close()
	fnw := fabric.NetworkFor("edge", nw)

	cloudSrv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := fnw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv.Serve(cl)
	t.Cleanup(func() { cloudSrv.Close() })

	node, err := kvstore.NewNode(kvstore.NodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	kl, err := fnw.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(kl)
	t.Cleanup(func() { node.Close() })

	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:           []string{"kv-0"},
		ReplicationFactor: 1,
		Network:           fnw,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })

	cloud, err := cloudstore.DialWithPolicy(ctx, fnw, "cloud",
		retrypolicy.Policy{
			MaxAttempts:    2,
			BaseDelay:      5 * time.Millisecond,
			AttemptTimeout: 500 * time.Millisecond,
		}, retrypolicy.BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })

	a, err := New(Config{
		Name:        "acct",
		Mode:        ModeRing,
		Index:       idx,
		Cloud:       cloud,
		LookupBatch: 8,
		UploadBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 64 unique 8 KiB chunks; the head covers exactly the first 16, i.e.
	// two full upload batches.
	data := make([]byte, 64*chunk.DefaultFixedSize)
	rand.New(rand.NewSource(42)).Read(data)
	const headChunks = 16
	head := headChunks * chunk.DefaultFixedSize
	// The fault must fire only after the *client* has acknowledged both
	// queued batches — waiting on the server's stats instead would race:
	// the store can complete while the ack is still on the wire, and
	// resetting the connection then drops an ack for chunks the cloud
	// holds. The agent's uploaded-chunks counter increments exactly on
	// acknowledgement.
	acked := metrics.Default().Counter("agent_uploaded_chunks_total", "mode", ModeRing.String())
	base := acked.Value()
	gr := &gatedReader{
		head: bytes.NewReader(data[:head]),
		tail: bytes.NewReader(data[head:]),
		gate: func() {
			deadline := time.Now().Add(5 * time.Second)
			for acked.Value() < base+headChunks {
				if time.Now().After(deadline) {
					t.Error("uploader never acknowledged the first two batches")
					break
				}
				time.Sleep(time.Millisecond)
			}
			fabric.Isolate("cloud")
		},
	}

	rep, err := a.ProcessStream(ctx, "doomed", gr)
	if err == nil {
		t.Fatal("stream succeeded with the cloud isolated mid-upload")
	}

	st := cloudSrv.Stats()
	if rep.UploadedChunks != st.UniqueChunks {
		t.Errorf("Report.UploadedChunks = %d, cloud holds %d", rep.UploadedChunks, st.UniqueChunks)
	}
	if rep.UploadedBytes != st.UniqueBytes {
		t.Errorf("Report.UploadedBytes = %d, cloud holds %d bytes", rep.UploadedBytes, st.UniqueBytes)
	}
	if rep.UploadedChunks == 0 {
		t.Error("no chunks acknowledged before the fault; the gate fired too early")
	}
	if st.Manifests != 0 {
		t.Errorf("aborted stream recorded %d manifests, want 0", st.Manifests)
	}

	// The ring index may only reference chunks the cloud durably holds.
	fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
	if err != nil {
		t.Fatal(err)
	}
	var ids []chunk.ID
	if err := fc.Split(bytes.NewReader(data), func(c chunk.Chunk) error {
		ids = append(ids, c.ID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	keys := make([][]byte, len(ids))
	for i := range ids {
		id := ids[i]
		keys[i] = id[:]
	}
	indexed, err := idx.BatchHas(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	fabric.Restore("cloud")
	probe, err := cloudstore.Dial(ctx, fnw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { probe.Close() })
	held, err := probe.BatchHas(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	var indexedCount int64
	for i := range ids {
		if indexed[i] {
			indexedCount++
			if !held[i] {
				t.Errorf("index references chunk %d (%x…) absent from cloud", i, ids[i][:4])
			}
		}
	}
	if indexedCount != rep.UploadedChunks {
		t.Errorf("index holds %d of the stream's chunks, want %d (the acknowledged uploads)",
			indexedCount, rep.UploadedChunks)
	}
}

// TestContextCancellationStopsProcessing: a cancelled context aborts the
// stream promptly.
func TestContextCancellationStopsProcessing(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "cancelled", 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.ProcessBytes(ctx, "f", duplicatedData(3, 256*1024))
	if err == nil {
		t.Fatal("processing succeeded with a cancelled context")
	}
}

// TestEmptyStream: zero-byte input is a valid no-op stream.
func TestEmptyStream(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "empty", 0)
	rep, err := a.ProcessBytes(context.Background(), "empty-file", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputBytes != 0 || rep.UploadedBytes != 0 {
		t.Fatalf("empty stream produced bytes: %+v", rep)
	}
	// Its manifest restores to an empty stream.
	cl := tb.cloudClient(t)
	got, err := cl.Restore(context.Background(), "empty-file")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("restored %d bytes for empty stream", len(got))
	}
}
