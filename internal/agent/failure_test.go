package agent

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/transport"
)

// deadCloudClient returns a client whose server is already gone.
func deadCloudClient(t *testing.T) *cloudstore.Client {
	t.Helper()
	nw := transport.NewMemNetwork()
	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	cl, err := cloudstore.Dial(context.Background(), nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	srv.Close()
	return cl
}

// TestUploadFailureSurfacesAndDrains: with the cloud gone, the async
// uploader must report the failure and the pipeline must terminate
// instead of blocking on its queue.
func TestUploadFailureSurfacesAndDrains(t *testing.T) {
	a, err := New(Config{
		Name:  "doomed",
		Mode:  ModeCloudAssisted,
		Cloud: deadCloudClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := duplicatedData(1, 256*1024)
	done := make(chan error, 1)
	go func() {
		_, err := a.ProcessBytes(context.Background(), "f", data)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("processing succeeded against a dead cloud")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline hung on a dead cloud")
	}
}

// deadRingIndex is a cluster whose only member never existed.
func deadRingIndex(t *testing.T, tb *testbed) *kvstore.Cluster {
	t.Helper()
	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:     []string{"kv-gone"},
		Network:     tb.nw,
		CallTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	return idx
}

// TestIndexFailureDowngradesToCloud: ring mode with every index node dead
// degrades to cloud-assisted lookups instead of failing the stream, and
// records the downgrade in the report.
func TestIndexFailureDowngradesToCloud(t *testing.T) {
	tb := newTestbed(t, 1)
	a, err := New(Config{
		Name:  "no-index",
		Mode:  ModeRing,
		Index: deadRingIndex(t, tb),
		Cloud: tb.cloudClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := a.ProcessBytes(context.Background(), "f", duplicatedData(2, 64*1024))
	if err != nil {
		t.Fatalf("degraded processing failed: %v", err)
	}
	if rep.Downgrades == 0 || rep.DegradedLookups == 0 {
		t.Fatalf("downgrade not recorded: %+v", rep)
	}
	if !a.Degraded() {
		t.Fatal("agent not marked degraded after ring outage")
	}
	// The backup is still restorable despite the dead index.
	got, err := tb.cloudClient(t).Restore(context.Background(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, duplicatedData(2, 64*1024)) {
		t.Fatal("degraded-mode restore is not byte-identical")
	}
}

// TestIndexFailureSurfacesWhenStrict: StrictRing restores the old
// behaviour — every index node dead fails the stream with an index/lookup
// error.
func TestIndexFailureSurfacesWhenStrict(t *testing.T) {
	tb := newTestbed(t, 1)
	a, err := New(Config{
		Name:       "no-index",
		Mode:       ModeRing,
		Index:      deadRingIndex(t, tb),
		Cloud:      tb.cloudClient(t),
		StrictRing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.ProcessBytes(context.Background(), "f", duplicatedData(2, 64*1024))
	if err == nil {
		t.Fatal("strict processing succeeded without a reachable index")
	}
	if !strings.Contains(err.Error(), "lookup") && !strings.Contains(err.Error(), "index") {
		t.Fatalf("unexpected error kind: %v", err)
	}
}

// TestContextCancellationStopsProcessing: a cancelled context aborts the
// stream promptly.
func TestContextCancellationStopsProcessing(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "cancelled", 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.ProcessBytes(ctx, "f", duplicatedData(3, 256*1024))
	if err == nil {
		t.Fatal("processing succeeded with a cancelled context")
	}
}

// TestEmptyStream: zero-byte input is a valid no-op stream.
func TestEmptyStream(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "empty", 0)
	rep, err := a.ProcessBytes(context.Background(), "empty-file", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputBytes != 0 || rep.UploadedBytes != 0 {
		t.Fatalf("empty stream produced bytes: %+v", rep)
	}
	// Its manifest restores to an empty stream.
	cl := tb.cloudClient(t)
	got, err := cl.Restore(context.Background(), "empty-file")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("restored %d bytes for empty stream", len(got))
	}
}
