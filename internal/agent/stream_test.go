package agent

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// repeatingReader yields size bytes of a repeating pattern without ever
// materializing them, so streaming tests can push data much larger than
// any buffer the agent is allowed to hold.
type repeatingReader struct {
	pattern []byte
	remain  int64
	off     int
}

func (r *repeatingReader) Read(p []byte) (int, error) {
	if r.remain <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && r.remain > 0 {
		c := copy(p[n:], r.pattern[r.off:])
		if int64(c) > r.remain {
			c = int(r.remain)
		}
		n += c
		r.remain -= int64(c)
		r.off = (r.off + c) % len(r.pattern)
	}
	return n, nil
}

// TestProcessStreamIncremental pushes a 16 MiB highly-redundant stream
// through a ring agent from a reader (never materialized as one slice)
// and checks the pipeline deduplicates it down to the pattern size.
func TestProcessStreamIncremental(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "streamer", 0)

	pattern := make([]byte, 64*1024) // 8 distinct chunks at the 8 KiB default
	for i := 0; i+8 <= len(pattern); i += 8 {
		binary.LittleEndian.PutUint64(pattern[i:], uint64(i)*0x9E3779B97F4A7C15)
	}
	const total = 16 << 20
	r := &repeatingReader{pattern: pattern, remain: total}

	rep, err := a.ProcessStream(t.Context(), "big-stream", r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputBytes != total {
		t.Fatalf("InputBytes = %d, want %d", rep.InputBytes, total)
	}
	if rep.UploadedBytes != int64(len(pattern)) {
		t.Fatalf("UploadedBytes = %d, want %d (one pattern's worth)", rep.UploadedBytes, len(pattern))
	}
	if got := rep.DedupRatio(); got < 250 {
		t.Fatalf("DedupRatio = %.0f, want >= 250 on a repeating stream", got)
	}
	// The cloud holds exactly the pattern.
	if st := tb.cloud.Stats(); st.UniqueBytes != int64(len(pattern)) {
		t.Fatalf("cloud UniqueBytes = %d, want %d", st.UniqueBytes, len(pattern))
	}
}

// failingReader errors mid-stream.
type failingReader struct {
	data []byte
	off  int
}

var errStreamBroke = errors.New("stream broke")

func (r *failingReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, errStreamBroke
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestProcessStreamReadFailure: a mid-stream read error must surface and
// must not wedge the pipeline's background workers.
func TestProcessStreamReadFailure(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "broken", 0)
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 64*1024)
	_, err := a.ProcessStream(t.Context(), "broken-stream", &failingReader{data: data})
	if err == nil {
		t.Fatal("mid-stream failure not reported")
	}
	// The agent must remain usable afterwards.
	rep, err := a.ProcessBytes(t.Context(), "after", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputBytes != int64(len(data)) {
		t.Fatalf("agent wedged after stream failure: %+v", rep)
	}
}

// TestProcessStreamManifestOrder verifies the manifest preserves stream
// order including duplicate chunks, so restore reproduces the stream.
func TestProcessStreamManifestOrder(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "order", 0)
	half := duplicatedData(5, 64*1024)
	if _, err := a.ProcessBytes(t.Context(), "ordered", half); err != nil {
		t.Fatal(err)
	}
	cl := tb.cloudClient(t)
	got, err := cl.Restore(t.Context(), "ordered")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, half) {
		t.Fatal("restored stream differs (manifest order broken)")
	}
}
