// Package agent implements the EF-dedup Dedup Agent (paper Sec. IV): the
// per-edge-node pipeline that splits incoming data into chunks, hashes
// them, consults a deduplication index, and ships only unique chunks to
// the central cloud.
//
// The agent runs in one of three modes, matching the paper's comparison:
//
//   - ModeRing (EF-dedup/SMART): the index is the D2-ring's distributed
//     KV store; lookups mostly stay inside the edge; unique chunks are
//     uploaded to the cloud.
//   - ModeCloudAssisted: no edge index; chunk hashes are probed against
//     the cloud's global index over the WAN, and misses are uploaded.
//   - ModeCloudOnly: raw data is shipped to the cloud unmodified; the
//     cloud chunks and deduplicates server-side.
package agent

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
)

// ErrConfig marks invalid agent assembly or a call that is illegal in the
// configured dedup mode: caller mistakes, never transient.
var ErrConfig = errors.New("agent: invalid configuration")

// Mode selects the deduplication strategy.
type Mode int

// Operating modes.
const (
	ModeRing Mode = iota + 1
	ModeCloudAssisted
	ModeCloudOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeRing:
		return "ring"
	case ModeCloudAssisted:
		return "cloud-assisted"
	case ModeCloudOnly:
		return "cloud-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Default pipeline batch sizes. Lookups are batched but still issued as
// chunks are produced, so index latency stays on the critical path (the
// effect Fig. 5(b) measures). Uploads batch more aggressively since they
// are bandwidth- rather than latency-bound.
const (
	DefaultLookupBatch = 32
	DefaultUploadBatch = 64
)

// DefaultLookupInflight is the default number of overlapped index-lookup
// batches. Edge index lookups are latency- rather than bandwidth-bound,
// so a small window hides most of the RPC round trip without reordering
// risk (delivery stays ordered regardless; see pipeline.go).
const DefaultLookupInflight = 4

// DefaultMaxStreams is the default cap on concurrent ProcessStream
// calls per agent; calls beyond it queue FIFO at admission. An edge
// node fronts many clients, but each admitted stream pins pipeline
// channels and a collector/router/uploader trio, so admission — not
// goroutine count — is the knob that bounds per-node footprint.
const DefaultMaxStreams = 64

// DefaultArenaBudget is the default agent-wide cap on chunk payload
// bytes resident in pipelines (see Config.ArenaBudgetBytes): enough to
// keep every default-sized pool busy, small enough that a burst of
// streams backpressures chunkers instead of growing RSS.
const DefaultArenaBudget = 256 << 20

// Config assembles an agent.
type Config struct {
	// Name identifies the agent (used in manifests).
	Name string
	// Mode selects the strategy; required.
	Mode Mode
	// Chunker splits input; defaults to an 8 KiB fixed chunker.
	Chunker chunk.Chunker
	// Index is the D2-ring index; required in ModeRing.
	Index *kvstore.Cluster
	// Cloud is the central store client; required in every mode.
	Cloud *cloudstore.Client
	// LookupBatch is the number of chunk hashes per index lookup RPC.
	LookupBatch int
	// UploadBatch is the number of chunks per cloud upload RPC.
	UploadBatch int
	// HashWorkers is the number of concurrent SHA-256 workers hashing
	// chunks behind the chunker. Defaults to GOMAXPROCS. Results are
	// delivered in stream order, so the manifest and Report are
	// identical for any worker count.
	HashWorkers int
	// LookupInflight is how many index-lookup batches may be in flight
	// at once before the pipeline backpressures the chunker. Defaults
	// to DefaultLookupInflight. Like HashWorkers, it changes overlap,
	// never results.
	LookupInflight int
	// StrictRing disables graceful degradation in ModeRing: ring index
	// failures abort the stream instead of downgrading to cloud-assisted
	// lookups. By default a ring outage costs dedup efficiency, never the
	// backup — the cloud re-deduplicates whatever the edge over-sends.
	StrictRing bool
	// MaxStreams caps concurrent ProcessStream calls; excess callers
	// block FIFO at admission (agent_stream_admission_wait_seconds
	// observes the wait). Defaults to DefaultMaxStreams; negative means
	// unlimited.
	MaxStreams int
	// ArenaBudgetBytes caps the chunk payload bytes resident across all
	// of the agent's pipelines: each chunk's capacity is acquired before
	// it enters the pipeline and credited back when the payload retires,
	// so aggregate ingest memory is bounded regardless of stream count.
	// Defaults to DefaultArenaBudget; negative disables the budget.
	ArenaBudgetBytes int64
}

// Report summarizes one processed stream.
type Report struct {
	// Name of the stream.
	Name string
	// InputBytes and InputChunks describe the pre-dedup stream.
	InputBytes  int64
	InputChunks int64
	// DuplicateChunks were suppressed at the edge (or, for cloud-only,
	// by the cloud).
	DuplicateChunks int64
	// UploadedChunks/UploadedBytes is what crossed the WAN as chunk
	// payloads. Cloud-only mode uploads all InputBytes.
	UploadedChunks int64
	UploadedBytes  int64
	// Duration is wall-clock processing time.
	Duration time.Duration

	// Degradation telemetry (ModeRing only). Downgrades counts ring →
	// cloud-assisted transitions, Recoveries the reverse. DegradedLookups
	// is how many chunk lookups were answered without the ring index.
	// IndexInsertFailures counts fresh hashes the ring refused to record
	// (peers will re-upload those chunks; correctness is unaffected).
	Downgrades          int64
	Recoveries          int64
	DegradedLookups     int64
	IndexInsertFailures int64
}

// Throughput returns the client-observed dedup throughput in bytes/second
// (the paper's "amount of input data deduplicated within a timeframe").
func (r Report) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.InputBytes) / r.Duration.Seconds()
}

// DedupRatio returns input bytes over uploaded bytes (∞-safe: returns 1
// for empty input, and input/1 when nothing was uploaded).
func (r Report) DedupRatio() float64 {
	if r.InputBytes == 0 {
		return 1
	}
	if r.UploadedBytes == 0 {
		return float64(r.InputBytes)
	}
	return float64(r.InputBytes) / float64(r.UploadedBytes)
}

// Agent is a single edge node's dedup pipeline. Safe for concurrent
// use: any number of goroutines may call ProcessStream/ProcessBytes on
// one agent — MaxStreams are admitted at a time, and all admitted
// streams share the agent's scheduler pools and arena byte budget.
type Agent struct {
	cfg Config
	met *agentMetrics

	// sched is the shared ingest scheduler: hash/lookup worker pools and
	// the arena byte budget, serving every concurrent stream.
	sched *scheduler
	// streamSem is the MaxStreams admission semaphore (nil = unlimited).
	// Blocked senders on a channel are served FIFO, so admission order
	// is arrival order.
	streamSem chan struct{}

	// activeStreams backs the agent_streams_active gauge: admitted
	// streams currently processing (all modes, cloud-only included).
	activeStreams atomic.Int64

	totalMu sync.Mutex
	total   Report // cumulative across streams

	mu       sync.Mutex
	degraded bool // ring lookups currently downgraded
}

// New validates cfg and returns an agent.
func New(cfg Config) (*Agent, error) {
	switch cfg.Mode {
	case ModeRing:
		if cfg.Index == nil {
			return nil, fmt.Errorf("%w: ring mode needs an index cluster", ErrConfig)
		}
	case ModeCloudAssisted, ModeCloudOnly:
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrConfig, int(cfg.Mode))
	}
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("%w: cloud client required", ErrConfig)
	}
	if cfg.Chunker == nil {
		fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
		if err != nil {
			return nil, err
		}
		cfg.Chunker = fc
	}
	if cfg.LookupBatch <= 0 {
		cfg.LookupBatch = DefaultLookupBatch
	}
	if cfg.UploadBatch <= 0 {
		cfg.UploadBatch = DefaultUploadBatch
	}
	if cfg.HashWorkers <= 0 {
		// Workers beyond the physical cores only add scheduler churn
		// (SHA-256 is pure CPU), so cap the default at both limits.
		cfg.HashWorkers = min(runtime.GOMAXPROCS(0), runtime.NumCPU())
	}
	if cfg.LookupInflight <= 0 {
		cfg.LookupInflight = DefaultLookupInflight
	}
	if cfg.MaxStreams == 0 {
		cfg.MaxStreams = DefaultMaxStreams
	}
	if cfg.ArenaBudgetBytes == 0 {
		cfg.ArenaBudgetBytes = DefaultArenaBudget
	}
	a := &Agent{cfg: cfg, met: newAgentMetrics(cfg.Mode)}
	a.sched = newScheduler(cfg.HashWorkers, cfg.LookupInflight, cfg.ArenaBudgetBytes, a.met)
	if cfg.MaxStreams > 0 {
		a.streamSem = make(chan struct{}, cfg.MaxStreams)
	}
	gaugeName := cfg.Name
	if gaugeName == "" {
		gaugeName = cfg.Mode.String()
	}
	metrics.Default().GaugeFunc("agent_degraded", func() float64 {
		if a.Degraded() {
			return 1
		}
		return 0
	}, "agent", gaugeName)
	return a, nil
}

// Mode returns the agent's operating mode.
func (a *Agent) Mode() Mode { return a.cfg.Mode }

// Degraded reports whether ring lookups are currently downgraded to the
// cloud-assisted path.
func (a *Agent) Degraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// noteDowngrade flips the agent into degraded mode, reporting whether
// this call was the transition.
func (a *Agent) noteDowngrade() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	was := a.degraded
	a.degraded = true
	return !was
}

// noteRecovery flips the agent back to ring lookups, reporting whether
// this call was the transition.
func (a *Agent) noteRecovery() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	was := a.degraded
	a.degraded = false
	return was
}

// Totals returns cumulative counters across all processed streams.
func (a *Agent) Totals() Report {
	a.totalMu.Lock()
	defer a.totalMu.Unlock()
	return a.total
}

// admit claims a MaxStreams seat, blocking FIFO behind earlier callers.
// The wait — near zero while seats are free — is observed into the
// admission histogram so saturation shows up as a latency shift there
// before it shows up in stream latency.
func (a *Agent) admit(ctx context.Context) error {
	if a.streamSem != nil {
		sp := metrics.StartTimer(a.met.admissionWait)
		select {
		case a.streamSem <- struct{}{}:
		case <-ctx.Done():
			sp.End()
			return fmt.Errorf("agent: stream admission: %w", ctx.Err())
		}
		sp.End()
	}
	a.met.streamsActive.Set(a.activeStreams.Add(1))
	return nil
}

// leave returns an admitted stream's seat.
func (a *Agent) leave() {
	a.met.streamsActive.Set(a.activeStreams.Add(-1))
	if a.streamSem != nil {
		<-a.streamSem
	}
}

// ProcessBytes deduplicates an in-memory stream. It follows ProcessStream's
// contract, but when the chunker supports zero-copy scanning
// (chunk.RawBytesChunker) the pipeline works directly on data — no read
// copy, no arena copy — which is the fastest ingest path.
func (a *Agent) ProcessBytes(ctx context.Context, name string, data []byte) (Report, error) {
	start := time.Now()
	if err := a.admit(ctx); err != nil {
		return Report{}, err
	}
	defer a.leave()
	if a.cfg.Mode == ModeCloudOnly {
		return a.rawUpload(ctx, name, data, start)
	}
	p := a.newPipeline(ctx, name)
	return a.finishStream(ctx, p, p.runBytes(data), start)
}

// ProcessStream deduplicates r under the agent's mode, records a manifest
// named after the stream and returns per-stream statistics. In ring and
// cloud-assisted mode the stream is processed incrementally: memory stays
// bounded by the in-flight lookup and upload batches regardless of stream
// size. Cloud-only mode buffers the stream (it is shipped in one raw
// upload, mirroring the paper's strategy of sending data unmodified).
//
// Any number of goroutines may call ProcessStream concurrently: up to
// Config.MaxStreams are admitted at once and share the agent's hash and
// lookup pools round-robin under the arena byte budget, so adding
// streams raises utilization, not footprint.
func (a *Agent) ProcessStream(ctx context.Context, name string, r io.Reader) (Report, error) {
	start := time.Now()
	if err := a.admit(ctx); err != nil {
		return Report{}, err
	}
	defer a.leave()

	if a.cfg.Mode == ModeCloudOnly {
		data, err := io.ReadAll(r)
		if err != nil {
			return Report{}, fmt.Errorf("agent: read stream %s: %w", name, err)
		}
		return a.rawUpload(ctx, name, data, start)
	}

	p := a.newPipeline(ctx, name)
	return a.finishStream(ctx, p, p.run(r), start)
}

// rawUpload ships one buffered stream unmodified (ModeCloudOnly).
func (a *Agent) rawUpload(ctx context.Context, name string, data []byte, start time.Time) (Report, error) {
	rep := Report{Name: name}
	sp := metrics.StartTimer(a.met.uploadLat)
	stored, err := a.cfg.Cloud.UploadRaw(ctx, name, data)
	sp.End()
	if err != nil {
		return rep, fmt.Errorf("agent: raw upload %s: %w", name, err)
	}
	rep.InputBytes = int64(len(data))
	rep.UploadedBytes = int64(len(data)) // all bytes cross the WAN
	rep.UploadedChunks = int64(stored)
	rep.Duration = time.Since(start)
	a.met.uploadedChunks.Add(rep.UploadedChunks)
	a.met.uploadedBytes.Add(rep.UploadedBytes)
	a.met.streamLat.ObserveDuration(rep.Duration)
	a.accumulate(rep)
	return rep, nil
}

// finishStream joins the pipeline and records the stream's manifest.
func (a *Agent) finishStream(ctx context.Context, p *pipeline, runErr error, start time.Time) (Report, error) {
	rep, finishErr := p.finish(runErr)
	if finishErr != nil {
		// The manifest is only recorded below, after every chunk it
		// references was durably uploaded; an aborted stream therefore
		// leaves no manifest behind, so a restore can never reference
		// chunks the cloud lacks.
		return rep, finishErr
	}
	msp := metrics.StartTimer(a.met.manifestLat)
	err := a.cfg.Cloud.PutManifest(ctx, rep.Name, p.manifest)
	msp.End()
	if err != nil {
		return rep, fmt.Errorf("agent: manifest %s: %w", rep.Name, err)
	}
	rep.Duration = time.Since(start)
	a.met.streamLat.ObserveDuration(rep.Duration)
	a.accumulate(rep)
	return rep, nil
}

func (a *Agent) accumulate(rep Report) {
	a.totalMu.Lock()
	defer a.totalMu.Unlock()
	a.total.InputBytes += rep.InputBytes
	a.total.InputChunks += rep.InputChunks
	a.total.DuplicateChunks += rep.DuplicateChunks
	a.total.UploadedChunks += rep.UploadedChunks
	a.total.UploadedBytes += rep.UploadedBytes
	a.total.Duration += rep.Duration
	a.total.Downgrades += rep.Downgrades
	a.total.Recoveries += rep.Recoveries
	a.total.DegradedLookups += rep.DegradedLookups
	a.total.IndexInsertFailures += rep.IndexInsertFailures
}
