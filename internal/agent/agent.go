// Package agent implements the EF-dedup Dedup Agent (paper Sec. IV): the
// per-edge-node pipeline that splits incoming data into chunks, hashes
// them, consults a deduplication index, and ships only unique chunks to
// the central cloud.
//
// The agent runs in one of three modes, matching the paper's comparison:
//
//   - ModeRing (EF-dedup/SMART): the index is the D2-ring's distributed
//     KV store; lookups mostly stay inside the edge; unique chunks are
//     uploaded to the cloud.
//   - ModeCloudAssisted: no edge index; chunk hashes are probed against
//     the cloud's global index over the WAN, and misses are uploaded.
//   - ModeCloudOnly: raw data is shipped to the cloud unmodified; the
//     cloud chunks and deduplicates server-side.
package agent

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sync/atomic"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
)

// ErrConfig marks invalid agent assembly or a call that is illegal in the
// configured dedup mode: caller mistakes, never transient.
var ErrConfig = errors.New("agent: invalid configuration")

// Mode selects the deduplication strategy.
type Mode int

// Operating modes.
const (
	ModeRing Mode = iota + 1
	ModeCloudAssisted
	ModeCloudOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeRing:
		return "ring"
	case ModeCloudAssisted:
		return "cloud-assisted"
	case ModeCloudOnly:
		return "cloud-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Default pipeline batch sizes. Lookups are batched but still issued as
// chunks are produced, so index latency stays on the critical path (the
// effect Fig. 5(b) measures). Uploads batch more aggressively since they
// are bandwidth- rather than latency-bound.
const (
	DefaultLookupBatch = 32
	DefaultUploadBatch = 64
)

// Config assembles an agent.
type Config struct {
	// Name identifies the agent (used in manifests).
	Name string
	// Mode selects the strategy; required.
	Mode Mode
	// Chunker splits input; defaults to an 8 KiB fixed chunker.
	Chunker chunk.Chunker
	// Index is the D2-ring index; required in ModeRing.
	Index *kvstore.Cluster
	// Cloud is the central store client; required in every mode.
	Cloud *cloudstore.Client
	// LookupBatch is the number of chunk hashes per index lookup RPC.
	LookupBatch int
	// UploadBatch is the number of chunks per cloud upload RPC.
	UploadBatch int
	// StrictRing disables graceful degradation in ModeRing: ring index
	// failures abort the stream instead of downgrading to cloud-assisted
	// lookups. By default a ring outage costs dedup efficiency, never the
	// backup — the cloud re-deduplicates whatever the edge over-sends.
	StrictRing bool
}

// Report summarizes one processed stream.
type Report struct {
	// Name of the stream.
	Name string
	// InputBytes and InputChunks describe the pre-dedup stream.
	InputBytes  int64
	InputChunks int64
	// DuplicateChunks were suppressed at the edge (or, for cloud-only,
	// by the cloud).
	DuplicateChunks int64
	// UploadedChunks/UploadedBytes is what crossed the WAN as chunk
	// payloads. Cloud-only mode uploads all InputBytes.
	UploadedChunks int64
	UploadedBytes  int64
	// Duration is wall-clock processing time.
	Duration time.Duration

	// Degradation telemetry (ModeRing only). Downgrades counts ring →
	// cloud-assisted transitions, Recoveries the reverse. DegradedLookups
	// is how many chunk lookups were answered without the ring index.
	// IndexInsertFailures counts fresh hashes the ring refused to record
	// (peers will re-upload those chunks; correctness is unaffected).
	Downgrades          int64
	Recoveries          int64
	DegradedLookups     int64
	IndexInsertFailures int64
}

// Throughput returns the client-observed dedup throughput in bytes/second
// (the paper's "amount of input data deduplicated within a timeframe").
func (r Report) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.InputBytes) / r.Duration.Seconds()
}

// DedupRatio returns input bytes over uploaded bytes (∞-safe: returns 1
// for empty input, and input/1 when nothing was uploaded).
func (r Report) DedupRatio() float64 {
	if r.InputBytes == 0 {
		return 1
	}
	if r.UploadedBytes == 0 {
		return float64(r.InputBytes)
	}
	return float64(r.InputBytes) / float64(r.UploadedBytes)
}

// Agent is a single edge node's dedup pipeline. Safe for sequential use;
// create one agent per concurrent stream.
type Agent struct {
	cfg Config
	met *agentMetrics

	total Report // cumulative across streams

	mu       sync.Mutex
	degraded bool // ring lookups currently downgraded
}

// New validates cfg and returns an agent.
func New(cfg Config) (*Agent, error) {
	switch cfg.Mode {
	case ModeRing:
		if cfg.Index == nil {
			return nil, fmt.Errorf("%w: ring mode needs an index cluster", ErrConfig)
		}
	case ModeCloudAssisted, ModeCloudOnly:
	default:
		return nil, fmt.Errorf("%w: unknown mode %d", ErrConfig, int(cfg.Mode))
	}
	if cfg.Cloud == nil {
		return nil, fmt.Errorf("%w: cloud client required", ErrConfig)
	}
	if cfg.Chunker == nil {
		fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
		if err != nil {
			return nil, err
		}
		cfg.Chunker = fc
	}
	if cfg.LookupBatch <= 0 {
		cfg.LookupBatch = DefaultLookupBatch
	}
	if cfg.UploadBatch <= 0 {
		cfg.UploadBatch = DefaultUploadBatch
	}
	a := &Agent{cfg: cfg, met: newAgentMetrics(cfg.Mode)}
	gaugeName := cfg.Name
	if gaugeName == "" {
		gaugeName = cfg.Mode.String()
	}
	metrics.Default().GaugeFunc("agent_degraded", func() float64 {
		if a.Degraded() {
			return 1
		}
		return 0
	}, "agent", gaugeName)
	return a, nil
}

// Mode returns the agent's operating mode.
func (a *Agent) Mode() Mode { return a.cfg.Mode }

// Degraded reports whether ring lookups are currently downgraded to the
// cloud-assisted path.
func (a *Agent) Degraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// noteDowngrade flips the agent into degraded mode, reporting whether
// this call was the transition.
func (a *Agent) noteDowngrade() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	was := a.degraded
	a.degraded = true
	return !was
}

// noteRecovery flips the agent back to ring lookups, reporting whether
// this call was the transition.
func (a *Agent) noteRecovery() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	was := a.degraded
	a.degraded = false
	return was
}

// Totals returns cumulative counters across all processed streams.
func (a *Agent) Totals() Report { return a.total }

// ProcessBytes deduplicates an in-memory stream. See ProcessStream.
func (a *Agent) ProcessBytes(ctx context.Context, name string, data []byte) (Report, error) {
	return a.ProcessStream(ctx, name, bytes.NewReader(data))
}

// ProcessStream deduplicates r under the agent's mode, records a manifest
// named after the stream and returns per-stream statistics. In ring and
// cloud-assisted mode the stream is processed incrementally: memory stays
// bounded by the in-flight lookup and upload batches regardless of stream
// size. Cloud-only mode buffers the stream (it is shipped in one raw
// upload, mirroring the paper's strategy of sending data unmodified).
func (a *Agent) ProcessStream(ctx context.Context, name string, r io.Reader) (Report, error) {
	start := time.Now()

	if a.cfg.Mode == ModeCloudOnly {
		data, err := io.ReadAll(r)
		if err != nil {
			return Report{}, fmt.Errorf("agent: read stream %s: %w", name, err)
		}
		rep := Report{Name: name}
		sp := metrics.StartTimer(a.met.uploadLat)
		stored, err := a.cfg.Cloud.UploadRaw(ctx, name, data)
		sp.End()
		if err != nil {
			return rep, fmt.Errorf("agent: raw upload %s: %w", name, err)
		}
		rep.InputBytes = int64(len(data))
		rep.UploadedBytes = int64(len(data)) // all bytes cross the WAN
		rep.UploadedChunks = int64(stored)
		rep.Duration = time.Since(start)
		a.met.uploadedChunks.Add(rep.UploadedChunks)
		a.met.uploadedBytes.Add(rep.UploadedBytes)
		a.met.streamLat.ObserveDuration(rep.Duration)
		a.accumulate(rep)
		return rep, nil
	}

	p := a.newPipeline(ctx, name)
	err := a.cfg.Chunker.Split(r, p.add)
	if err == nil {
		err = p.flushLookups()
	}
	rep, finishErr := p.finish(err)
	if finishErr != nil {
		// The manifest is only recorded below, after every chunk it
		// references was durably uploaded; an aborted stream therefore
		// leaves no manifest behind, so a restore can never reference
		// chunks the cloud lacks.
		return rep, finishErr
	}
	msp := metrics.StartTimer(a.met.manifestLat)
	err = a.cfg.Cloud.PutManifest(ctx, name, p.manifest)
	msp.End()
	if err != nil {
		return rep, fmt.Errorf("agent: manifest %s: %w", name, err)
	}
	rep.Duration = time.Since(start)
	a.met.streamLat.ObserveDuration(rep.Duration)
	a.accumulate(rep)
	return rep, nil
}

// pipeline is the per-stream dedup state machine: it accumulates chunks
// into lookup batches, suppresses intra-stream duplicates, queues unique
// chunks onto an asynchronous upload worker (so WAN transfers overlap
// index lookups) and registers fresh hashes in the ring index off the
// critical path. A bounded queue and semaphore cap in-flight data.
type pipeline struct {
	a   *Agent
	ctx context.Context

	rep      Report
	manifest []chunk.ID
	seen     map[chunk.ID]bool
	lastAdd  time.Time

	lookupBuf     []chunk.Chunk
	pendingUpload []chunk.Chunk

	uploads   chan []chunk.Chunk
	uploadErr chan error

	// Written by the uploader goroutine, read by finish() after the
	// uploader exits: only chunks the cloud acknowledged are counted, so
	// Report.Uploaded* matches the store's contents even when a stream
	// aborts mid-upload.
	uploadedChunks atomic.Int64
	uploadedBytes  atomic.Int64

	indexWG          sync.WaitGroup
	indexMu          sync.Mutex
	indexErr         error
	indexSem         chan struct{}
	indexInsertFails atomic.Int64
}

func (a *Agent) newPipeline(ctx context.Context, name string) *pipeline {
	p := &pipeline{
		a:         a,
		ctx:       ctx,
		rep:       Report{Name: name},
		seen:      make(map[chunk.ID]bool),
		lastAdd:   time.Now(),
		uploads:   make(chan []chunk.Chunk, 4),
		uploadErr: make(chan error, 1),
		indexSem:  make(chan struct{}, 4),
	}
	go func() {
		defer close(p.uploadErr)
		for batch := range p.uploads {
			sp := metrics.StartTimer(a.met.uploadLat)
			_, err := a.cfg.Cloud.BatchUpload(ctx, batch)
			sp.End()
			if err != nil {
				p.uploadErr <- fmt.Errorf("agent: upload batch: %w", err)
				// Drain remaining batches so the producer never blocks.
				// Dropped batches are deliberately not counted: they
				// never reached the cloud.
				for range p.uploads {
				}
				return
			}
			var batchBytes int64
			for _, c := range batch {
				batchBytes += int64(len(c.Data))
			}
			p.uploadedChunks.Add(int64(len(batch)))
			p.uploadedBytes.Add(batchBytes)
			a.met.uploadedChunks.Add(int64(len(batch)))
			a.met.uploadedBytes.Add(batchBytes)
			a.met.uploadBatch.Observe(int64(len(batch)))
			// Only now — with the batch durable in the cloud — are its
			// hashes registered in the ring index. Registering at lookup
			// time (the old behaviour) could advertise chunks that a
			// mid-stream abort never uploaded, making peers skip uploads
			// for data the cloud does not hold.
			if a.cfg.Mode == ModeRing {
				p.registerFresh(batch)
			}
		}
	}()
	return p
}

// registerFresh records the batch's hashes in the ring index, off the
// critical path (our own later batches are covered by the local seen
// set). Called from the uploader goroutine strictly after the batch was
// acknowledged by the cloud, preserving the invariant that the index
// never references a chunk the cloud lacks.
func (p *pipeline) registerFresh(batch []chunk.Chunk) {
	keys := make([][]byte, len(batch))
	values := make([][]byte, len(batch))
	// One owner-name conversion for the whole batch: BatchPut encodes
	// values into the wire body without retaining or mutating them, so
	// every entry can share the same backing bytes (hotalloc).
	owner := []byte(p.a.cfg.Name)
	for i, c := range batch {
		id := c.ID
		keys[i] = id[:]
		values[i] = owner
	}
	p.indexSem <- struct{}{}
	p.indexWG.Add(1)
	go func() {
		defer p.indexWG.Done()
		defer func() { <-p.indexSem }()
		sp := metrics.StartTimer(p.a.met.insertLat)
		err := p.a.cfg.Index.BatchPut(p.ctx, keys, values)
		sp.End()
		if err == nil {
			return
		}
		// A missed insert only costs future dedup hits (peers re-upload
		// those chunks), so in degraded-tolerant mode it is counted, not
		// fatal. Cancellation stays fatal so aborted streams abort.
		if p.a.cfg.StrictRing || p.ctx.Err() != nil {
			p.indexMu.Lock()
			if p.indexErr == nil {
				p.indexErr = fmt.Errorf("agent: index insert: %w", err)
			}
			p.indexMu.Unlock()
			return
		}
		// A partial write names exactly the under-replicated keys; only
		// those count as failures. Anything else loses the whole batch.
		failed := int64(len(keys))
		var partial *kvstore.PartialWriteError
		if errors.As(err, &partial) {
			failed = int64(len(partial.FailedKeys))
		}
		p.indexInsertFails.Add(failed)
		p.a.met.insertFails.Add(failed)
	}()
}

// add receives one chunk from the chunker, in stream order.
func (p *pipeline) add(c chunk.Chunk) error {
	// Time since the previous add returned is what the chunker spent
	// reading, splitting and hashing this chunk (lookup flushes happen
	// inside add, so they are excluded).
	p.a.met.chunkProduce.ObserveDuration(time.Since(p.lastAdd))
	defer func() { p.lastAdd = time.Now() }()
	p.a.met.chunkBytes.Observe(int64(len(c.Data)))

	p.manifest = append(p.manifest, c.ID)
	p.rep.InputBytes += int64(len(c.Data))
	p.rep.InputChunks++
	if p.seen[c.ID] {
		p.rep.DuplicateChunks++
		p.a.met.dupChunks.Inc()
		return nil
	}
	p.seen[c.ID] = true
	p.lookupBuf = append(p.lookupBuf, c)
	if len(p.lookupBuf) >= p.a.cfg.LookupBatch {
		return p.flushLookups()
	}
	return nil
}

// flushLookups resolves the buffered chunks against the index and routes
// the fresh ones to the uploader and (in ring mode) the ring index.
func (p *pipeline) flushLookups() error {
	if len(p.lookupBuf) == 0 {
		return nil
	}
	batch := p.lookupBuf
	p.lookupBuf = nil
	sp := metrics.StartTimer(p.a.met.lookupLat)
	known, err := p.lookup(batch)
	sp.End()
	p.a.met.lookupBatch.Observe(int64(len(batch)))
	if err != nil {
		return err
	}
	for i, c := range batch {
		if known[i] {
			p.rep.DuplicateChunks++
			p.a.met.dupChunks.Inc()
			continue
		}
		p.pendingUpload = append(p.pendingUpload, c)
		if len(p.pendingUpload) >= p.a.cfg.UploadBatch {
			p.queueUpload()
		}
	}
	// Fresh hashes are registered in the ring index by the uploader, once
	// their batch is durable in the cloud (see registerFresh).
	return nil
}

// queueUpload hands the pending chunks to the asynchronous uploader.
// Upload accounting happens in the uploader itself, on acknowledgement —
// counting here (the old behaviour) credited chunks that a failed or
// aborted upload never delivered, so Report could claim more than the
// cloud held.
func (p *pipeline) queueUpload() {
	if len(p.pendingUpload) == 0 {
		return
	}
	batch := make([]chunk.Chunk, len(p.pendingUpload))
	copy(batch, p.pendingUpload)
	p.uploads <- batch
	p.pendingUpload = p.pendingUpload[:0]
}

// finish drains the pipeline and reports the first error among the given
// stream error, upload failures and index failures.
func (p *pipeline) finish(streamErr error) (Report, error) {
	if streamErr == nil {
		p.queueUpload()
	}
	close(p.uploads)
	uploadFailure := <-p.uploadErr
	p.indexWG.Wait()
	p.rep.UploadedChunks = p.uploadedChunks.Load()
	p.rep.UploadedBytes = p.uploadedBytes.Load()
	p.rep.IndexInsertFailures = p.indexInsertFails.Load()
	p.indexMu.Lock()
	indexFailure := p.indexErr
	p.indexMu.Unlock()
	switch {
	case streamErr != nil:
		return p.rep, streamErr
	case uploadFailure != nil:
		return p.rep, uploadFailure
	case indexFailure != nil:
		return p.rep, indexFailure
	}
	return p.rep, nil
}

// lookup answers which chunks in the batch are already indexed.
//
// In ModeRing (without StrictRing) it walks a downgrade ladder instead of
// failing the stream: ring index → cloud-assisted lookup → assume-fresh.
// Every rung preserves correctness — a chunk wrongly treated as fresh is
// re-deduplicated by the cloud's own index on upload — so ring outages
// cost WAN bytes, never data. The ring is still tried first on every
// batch: while its breakers are open those attempts fail fast, and the
// first one that succeeds after an outage is the recovery transition.
func (p *pipeline) lookup(batch []chunk.Chunk) ([]bool, error) {
	a := p.a
	switch a.cfg.Mode {
	case ModeRing:
		keys := make([][]byte, len(batch))
		for i, c := range batch {
			id := c.ID
			keys[i] = id[:]
		}
		known, err := a.cfg.Index.BatchHas(p.ctx, keys)
		if err == nil {
			if a.noteRecovery() {
				p.rep.Recoveries++
				a.met.recoveries.Inc()
			}
			return known, nil
		}
		if p.ctx.Err() != nil || a.cfg.StrictRing {
			return nil, fmt.Errorf("agent: ring lookup: %w", err)
		}
		if a.noteDowngrade() {
			p.rep.Downgrades++
			a.met.downgrades.Inc()
		}
		p.rep.DegradedLookups += int64(len(batch))
		a.met.degradedLookups.Add(int64(len(batch)))
		fallthrough
	case ModeCloudAssisted:
		ids := make([]chunk.ID, len(batch))
		for i, c := range batch {
			ids[i] = c.ID
		}
		known, err := a.cfg.Cloud.BatchHas(p.ctx, ids)
		if err == nil {
			return known, nil
		}
		if a.cfg.Mode == ModeCloudAssisted {
			// The cloud is this mode's only index; nothing to fall back to
			// but the uploader, which needs the same cloud anyway.
			return nil, fmt.Errorf("agent: cloud lookup: %w", err)
		}
		if p.ctx.Err() != nil {
			return nil, fmt.Errorf("agent: cloud lookup: %w", err)
		}
		// Bottom rung: assume every chunk fresh and let the cloud's own
		// index dedup on upload (ModeCloudOnly semantics per batch).
		return make([]bool, len(batch)), nil
	default:
		return nil, fmt.Errorf("%w: lookup in mode %s", ErrConfig, a.cfg.Mode)
	}
}

func (a *Agent) accumulate(rep Report) {
	a.total.InputBytes += rep.InputBytes
	a.total.InputChunks += rep.InputChunks
	a.total.DuplicateChunks += rep.DuplicateChunks
	a.total.UploadedChunks += rep.UploadedChunks
	a.total.UploadedBytes += rep.UploadedBytes
	a.total.Duration += rep.Duration
	a.total.Downgrades += rep.Downgrades
	a.total.Recoveries += rep.Recoveries
	a.total.DegradedLookups += rep.DegradedLookups
	a.total.IndexInsertFailures += rep.IndexInsertFailures
}
