package agent

import "efdedup/internal/metrics"

// agentMetrics pre-resolves the pipeline's series once per agent so the
// per-chunk hot path records without registry lookups. Every series
// carries a mode label, matching the paper's per-strategy comparison
// (Fig. 5): the same stage costs different amounts under ring,
// cloud-assisted and cloud-only dedup, and the breakdown should show it.
type agentMetrics struct {
	chunkProduce *metrics.Histogram // read+split+hash time per chunk
	chunkBytes   *metrics.Histogram // chunk payload sizes
	lookupLat    *metrics.Histogram // index lookup RPC latency per batch
	lookupBatch  *metrics.Histogram // chunks per lookup batch
	uploadLat    *metrics.Histogram // cloud upload RPC latency per batch
	uploadBatch  *metrics.Histogram // chunks per upload batch
	insertLat    *metrics.Histogram // ring index insert latency per batch
	manifestLat  *metrics.Histogram // manifest put latency per stream
	streamLat    *metrics.Histogram // end-to-end stream latency

	// Stage occupancy for the concurrent pipeline: how busy each stage
	// is right now, and how many lookup batches overlap in flight (the
	// histogram shows whether LookupInflight headroom is actually used).
	hashBusy           *metrics.Gauge     // hash workers currently hashing
	lookupInflight     *metrics.Gauge     // lookup batches currently in flight
	uploadQueue        *metrics.Gauge     // upload batches queued or uploading
	lookupInflightHist *metrics.Histogram // in-flight batches observed at dispatch

	// Multi-stream ingest: admission and memory backpressure. A rising
	// admissionWait means MaxStreams is the bottleneck; arenaInuse
	// pinned at ArenaBudgetBytes means the byte budget is.
	streamsActive *metrics.Gauge     // admitted streams currently processing
	admissionWait *metrics.Histogram // time blocked on the MaxStreams seat
	arenaInuse    *metrics.Gauge     // chunk payload bytes admitted to pipelines

	uploadedChunks  *metrics.Counter
	uploadedBytes   *metrics.Counter
	dupChunks       *metrics.Counter
	degradedLookups *metrics.Counter
	downgrades      *metrics.Counter
	recoveries      *metrics.Counter
	insertFails     *metrics.Counter
}

func newAgentMetrics(mode Mode) *agentMetrics {
	reg := metrics.Default()
	m := mode.String()
	return &agentMetrics{
		chunkProduce: reg.DurationHistogram("agent_chunk_produce_seconds", "mode", m),
		chunkBytes:   reg.Histogram("agent_chunk_bytes", "mode", m),
		lookupLat:    reg.DurationHistogram("agent_lookup_seconds", "mode", m),
		lookupBatch:  reg.Histogram("agent_lookup_batch_chunks", "mode", m),
		uploadLat:    reg.DurationHistogram("agent_upload_seconds", "mode", m),
		uploadBatch:  reg.Histogram("agent_upload_batch_chunks", "mode", m),
		insertLat:    reg.DurationHistogram("agent_index_insert_seconds", "mode", m),
		manifestLat:  reg.DurationHistogram("agent_manifest_put_seconds", "mode", m),
		streamLat:    reg.DurationHistogram("agent_stream_seconds", "mode", m),

		hashBusy:           reg.Gauge("agent_hash_workers_busy", "mode", m),
		lookupInflight:     reg.Gauge("agent_lookups_inflight", "mode", m),
		uploadQueue:        reg.Gauge("agent_upload_queue_batches", "mode", m),
		lookupInflightHist: reg.Histogram("agent_lookup_inflight_batches", "mode", m),

		streamsActive: reg.Gauge("agent_streams_active", "mode", m),
		admissionWait: reg.DurationHistogram("agent_stream_admission_wait_seconds", "mode", m),
		arenaInuse:    reg.Gauge("agent_arena_bytes_inuse", "mode", m),

		uploadedChunks:  reg.Counter("agent_uploaded_chunks_total", "mode", m),
		uploadedBytes:   reg.Counter("agent_uploaded_bytes_total", "mode", m),
		dupChunks:       reg.Counter("agent_duplicate_chunks_total", "mode", m),
		degradedLookups: reg.Counter("agent_degraded_lookups_total", "mode", m),
		downgrades:      reg.Counter("agent_downgrades_total", "mode", m),
		recoveries:      reg.Counter("agent_recoveries_total", "mode", m),
		insertFails:     reg.Counter("agent_index_insert_failures_total", "mode", m),
	}
}
