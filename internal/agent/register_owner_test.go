package agent

import (
	"context"
	"testing"

	"efdedup/internal/chunk"
)

// TestRegisterFreshOwnerValues pins the registerFresh batching contract:
// every index entry carries the full owner name even though all values in
// one BatchPut share a single backing []byte (the per-chunk conversion
// was hoisted out of the loop). A store that retained and mutated values
// would corrupt every entry at once — this test would catch that.
func TestRegisterFreshOwnerValues(t *testing.T) {
	tb := newTestbed(t, 2)
	idx := tb.ringIndex(t, 0)
	a, err := New(Config{
		Name:  "owner-agent",
		Mode:  ModeRing,
		Index: idx,
		Cloud: tb.cloudClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	data := duplicatedData(41, 64*1024)
	ctx := context.Background()
	if _, err := a.ProcessBytes(ctx, "owned", data); err != nil {
		t.Fatal(err)
	}

	// Recompute the chunk set with the agent's default chunker and read
	// every ID back out of the ring index.
	fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunk.SplitBytes(fc, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("need at least 2 chunks to exercise value sharing, got %d", len(chunks))
	}
	for _, c := range chunks {
		id := c.ID
		owner, err := idx.Get(ctx, id[:])
		if err != nil {
			t.Fatalf("index missing chunk %s: %v", c.ID, err)
		}
		if string(owner) != "owner-agent" {
			t.Fatalf("chunk %s owner = %q, want %q", c.ID, owner, "owner-agent")
		}
	}
}
