package agent

// The shared ingest scheduler: one hash-worker pool and one
// lookup-worker pool per agent, serving every concurrent ProcessStream
// call, instead of each call spawning its own HashWorkers+LookupInflight
// goroutines. Three properties the per-call design could not offer:
//
//   - Bounded CPU: total hash parallelism is HashWorkers and total
//     lookup RPC concurrency is LookupInflight no matter how many
//     streams are active. 128 streams on 8 cores contend for 8 hash
//     slots, not 1024 goroutines.
//   - Fairness: each pool drains per-stream queues round-robin — a
//     ready stream is appended to the tail of the ready list after
//     every job taken from it, so a 32 MiB stream's deep queue yields
//     one job per turn and a 4 KiB stream's single chunk is never stuck
//     behind it.
//   - Bounded memory: chunk payload bytes admitted into the pipelines
//     are capped by a FIFO byte budget (Config.ArenaBudgetBytes). The
//     chunker blocks in acquire until earlier chunks retire; grants are
//     strictly first-come, so admission inherits the same no-starvation
//     property.
//
// Per-stream ordering is untouched: each pipeline's hashOrder and
// lookupOrder FIFOs still sequence collector and router delivery, so
// manifests and Reports remain bit-identical to the sequential
// pipeline's regardless of pool sizing or stream interleaving.
//
// Worker lifecycle: pools are empty while no stream is active. attach
// tops the pools up to their configured sizes; workers exit when the
// attached-stream count returns to zero (the live counters make a
// worker still finishing its last job count against the cap, so a
// re-attach during drain never over-spawns). An agent therefore parks
// zero goroutines between streams.
//
// Draining: every queued job is eventually popped and its done token
// sent — the collector/router wait on those tokens even when aborting —
// but workers skip the actual SHA-256 / index RPC for aborted streams,
// so cancelling one stream frees its workers' time immediately. Queues
// are empty by the time a pipeline detaches (its stages have joined),
// so slots never leak jobs.

import (
	"sync"

	"efdedup/internal/chunk"
	"efdedup/internal/metrics"
)

// streamSlot is one attached pipeline's seat in the scheduler: its
// pending hash and lookup jobs, and whether it currently sits on each
// ready list (a slot appears at most once per list).
type streamSlot struct {
	p      *pipeline
	hashQ  []*hashJob
	lookQ  []*lookupJob
	onHash bool
	onLook bool
}

// scheduler is the per-agent shared pool state. One mutex guards all of
// it: operations are queue pushes/pops measured in nanoseconds, while
// the work between them (SHA-256 of a chunk, an index RPC) runs
// unlocked, so contention stays negligible even at hundreds of streams.
type scheduler struct {
	mu       sync.Mutex
	hashCond *sync.Cond
	lookCond *sync.Cond

	hashWorkers int
	lookWorkers int

	streams  int // attached pipelines
	hashLive int // hash workers running or finishing a job
	lookLive int // lookup workers running or finishing a job

	hashReady []*streamSlot // round-robin ready lists
	lookReady []*streamSlot

	budget *byteBudget
	met    *agentMetrics
}

func newScheduler(hashWorkers, lookWorkers int, budget int64, met *agentMetrics) *scheduler {
	s := &scheduler{
		hashWorkers: hashWorkers,
		lookWorkers: lookWorkers,
		budget:      newByteBudget(budget, met),
		met:         met,
	}
	s.hashCond = sync.NewCond(&s.mu)
	s.lookCond = sync.NewCond(&s.mu)
	return s
}

// attach registers a pipeline and tops the worker pools up to size.
func (s *scheduler) attach(p *pipeline) *streamSlot {
	slot := &streamSlot{p: p}
	s.mu.Lock()
	s.streams++
	for s.hashLive < s.hashWorkers {
		s.hashLive++
		go s.hashLoop()
	}
	for s.lookLive < s.lookWorkers {
		s.lookLive++
		go s.lookLoop()
	}
	s.mu.Unlock()
	return slot
}

// detach unregisters a finished pipeline. Its queues are empty by the
// stage-exit chain (every queued job's done token was awaited). When the
// last stream leaves, idle workers are woken to exit.
func (s *scheduler) detach(slot *streamSlot) {
	s.mu.Lock()
	s.streams--
	if s.streams == 0 {
		s.hashCond.Broadcast()
		s.lookCond.Broadcast()
	}
	s.mu.Unlock()
	_ = slot
}

// submitHash queues one chunk for the shared hash pool. Per-stream
// backpressure is the caller's hashOrder bound; the queue here never
// exceeds it.
func (s *scheduler) submitHash(slot *streamSlot, job *hashJob) {
	s.mu.Lock()
	slot.hashQ = append(slot.hashQ, job)
	if !slot.onHash {
		slot.onHash = true
		s.hashReady = append(s.hashReady, slot)
	}
	s.mu.Unlock()
	s.hashCond.Signal()
}

// submitLookup queues one resolved-order batch for the shared lookup
// pool. Per-stream backpressure is the caller's lookupOrder bound.
func (s *scheduler) submitLookup(slot *streamSlot, job *lookupJob) {
	s.mu.Lock()
	slot.lookQ = append(slot.lookQ, job)
	if !slot.onLook {
		slot.onLook = true
		s.lookReady = append(s.lookReady, slot)
	}
	s.mu.Unlock()
	s.lookCond.Signal()
}

// nextHash pops the next (slot, job) pair round-robin; it blocks while
// streams are attached and returns false when the pool should shrink.
// Callers hold s.mu.
func (s *scheduler) nextHash() (*streamSlot, *hashJob, bool) {
	for {
		if len(s.hashReady) > 0 {
			slot := s.hashReady[0]
			s.hashReady[0] = nil
			s.hashReady = s.hashReady[1:]
			job := slot.hashQ[0]
			slot.hashQ[0] = nil
			slot.hashQ = slot.hashQ[1:]
			if len(slot.hashQ) > 0 {
				s.hashReady = append(s.hashReady, slot) // back of the line
			} else {
				slot.onHash = false
				if len(slot.hashQ) == 0 {
					slot.hashQ = nil // let the drained queue's array go
				}
			}
			return slot, job, true
		}
		if s.streams == 0 {
			return nil, nil, false
		}
		s.hashCond.Wait()
	}
}

func (s *scheduler) hashLoop() {
	s.mu.Lock()
	for {
		slot, job, ok := s.nextHash()
		if !ok {
			s.hashLive--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		if !slot.p.aborted() {
			s.met.hashBusy.Add(1)
			job.c.ID = chunk.Sum(job.c.Data)
			s.met.hashBusy.Add(-1)
		}
		job.done <- struct{}{}
		s.mu.Lock()
	}
}

// nextLook is nextHash for the lookup pool. Callers hold s.mu.
func (s *scheduler) nextLook() (*streamSlot, *lookupJob, bool) {
	for {
		if len(s.lookReady) > 0 {
			slot := s.lookReady[0]
			s.lookReady[0] = nil
			s.lookReady = s.lookReady[1:]
			job := slot.lookQ[0]
			slot.lookQ[0] = nil
			slot.lookQ = slot.lookQ[1:]
			if len(slot.lookQ) > 0 {
				s.lookReady = append(s.lookReady, slot)
			} else {
				slot.onLook = false
				slot.lookQ = nil
			}
			return slot, job, true
		}
		if s.streams == 0 {
			return nil, nil, false
		}
		s.lookCond.Wait()
	}
}

func (s *scheduler) lookLoop() {
	s.mu.Lock()
	for {
		slot, job, ok := s.nextLook()
		if !ok {
			s.lookLive--
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		p := slot.p
		if p.aborted() {
			// The router releases the batch; resolving it would waste an
			// RPC on a stream that is already draining.
			job.known = make([]bool, len(job.batch))
		} else {
			sp := metrics.StartTimer(s.met.lookupLat)
			job.known, job.err = p.lookup(job.batch)
			sp.End()
			s.met.lookupBatch.Observe(int64(len(job.batch)))
		}
		s.met.lookupInflight.Set(p.lookupsInflight.Add(-1))
		job.done <- struct{}{}
		s.mu.Lock()
	}
}

// byteBudget admits chunk payload bytes into the pipelines. Grants are
// strict FIFO: release hands freed bytes to the oldest waiter first, so
// a stream of large chunks cannot be starved by a fast stream of small
// ones slipping in ahead of it (and vice versa).
type byteBudget struct {
	mu      sync.Mutex
	total   int64
	used    int64
	waiters []*budgetWaiter
	met     *agentMetrics
}

type budgetWaiter struct {
	n  int64
	ch chan struct{}
}

// newByteBudget returns a budget of total bytes; total <= 0 disables
// admission control (acquire and release become no-ops).
func newByteBudget(total int64, met *agentMetrics) *byteBudget {
	if total <= 0 {
		return nil
	}
	return &byteBudget{total: total, met: met}
}

// acquire blocks until n bytes fit. Requests larger than the whole
// budget are clamped — they admit alone rather than deadlock.
func (b *byteBudget) acquire(n int64) {
	if b == nil {
		return
	}
	n = min(n, b.total)
	b.mu.Lock()
	if len(b.waiters) == 0 && b.used+n <= b.total {
		b.used += n
		b.met.arenaInuse.Set(b.used)
		b.mu.Unlock()
		return
	}
	// Queue behind earlier waiters even if n would fit: barging would
	// starve waiting large requests behind a stream of small ones.
	w := &budgetWaiter{n: n, ch: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()
	<-w.ch // the releaser accounted our bytes before closing
}

// release returns n bytes and grants as many queued waiters, oldest
// first, as now fit.
func (b *byteBudget) release(n int64) {
	if b == nil {
		return
	}
	n = min(n, b.total) // mirror acquire's clamp
	b.mu.Lock()
	b.used -= n
	for len(b.waiters) > 0 && b.used+b.waiters[0].n <= b.total {
		w := b.waiters[0]
		b.waiters[0] = nil
		b.waiters = b.waiters[1:]
		b.used += w.n
		close(w.ch)
	}
	b.met.arenaInuse.Set(b.used)
	b.mu.Unlock()
}
