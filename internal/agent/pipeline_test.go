package agent

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/faultnet"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// TestPipelineEquivalenceAcrossConcurrency is the ordering property of
// the staged pipeline: HashWorkers and LookupInflight change wall-clock
// overlap, never results. Every combination must produce a manifest
// identical to a sequential SplitBytes pass and a Report identical to
// every other combination's (modulo Duration).
func TestPipelineEquivalenceAcrossConcurrency(t *testing.T) {
	// Random payload with a duplicated half so intra-stream dedup, index
	// dedup and fresh uploads are all exercised.
	data := duplicatedData(77, 384*1024+13)

	g := chunk.NewDefaultGearChunker()
	want, err := chunk.SplitBytes(g, data)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := make([]chunk.ID, len(want))
	for i, c := range want {
		wantIDs[i] = c.ID
	}

	var baseline *Report
	for _, hw := range []int{1, 4} {
		for _, li := range []int{1, 4} {
			// A fresh testbed per combination: shared cloud or ring state
			// would make later runs see earlier runs' chunks.
			tb := newTestbed(t, 3)
			a, err := New(Config{
				Name:           "prop",
				Mode:           ModeRing,
				Chunker:        chunk.NewDefaultGearChunker(),
				Index:          tb.ringIndex(t, 0),
				Cloud:          tb.cloudClient(t),
				LookupBatch:    8,
				UploadBatch:    16,
				HashWorkers:    hw,
				LookupInflight: li,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := a.ProcessBytes(context.Background(), "f", data)
			if err != nil {
				t.Fatalf("hw=%d li=%d: %v", hw, li, err)
			}

			cl := tb.cloudClient(t)
			manifest, err := cl.GetManifest(context.Background(), "f")
			if err != nil {
				t.Fatal(err)
			}
			if len(manifest) != len(wantIDs) {
				t.Fatalf("hw=%d li=%d: manifest has %d chunks, sequential split %d",
					hw, li, len(manifest), len(wantIDs))
			}
			for i := range wantIDs {
				if manifest[i] != wantIDs[i] {
					t.Fatalf("hw=%d li=%d: manifest[%d] diverges from sequential split", hw, li, i)
				}
			}
			got, err := cl.Restore(context.Background(), "f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("hw=%d li=%d: restore is not byte-identical", hw, li)
			}

			rep.Duration = 0 // the only field allowed to differ
			if baseline == nil {
				r := rep
				baseline = &r
			} else if rep != *baseline {
				t.Fatalf("hw=%d li=%d: report diverges:\n got %+v\nwant %+v", hw, li, rep, *baseline)
			}
		}
	}
	if baseline.UploadedChunks == 0 || baseline.DuplicateChunks == 0 {
		t.Fatalf("test exercised nothing: %+v", *baseline)
	}
}

// TestMidStreamRingOutageWithInflightLookups isolates every ring node
// while the pipeline has lookup batches in flight. The downgrade ladder
// must absorb the outage — concurrent in-flight batches and all — and
// the stream must complete over cloud-assisted lookups with a
// byte-identical backup.
func TestMidStreamRingOutageWithInflightLookups(t *testing.T) {
	ctx := context.Background()
	nw := transport.NewMemNetwork()
	fabric := faultnet.NewFabric(faultnet.Config{Seed: 3})
	defer fabric.Close()
	fnw := fabric.NetworkFor("edge", nw)

	cloudSrv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := fnw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	cloudSrv.Serve(cl)
	t.Cleanup(func() { cloudSrv.Close() })

	kvAddrs := []string{"kv-0", "kv-1"}
	for _, addr := range kvAddrs {
		node, err := kvstore.NewNode(kvstore.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		kl, err := fnw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(kl)
		t.Cleanup(func() { node.Close() })
	}
	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:           kvAddrs,
		ReplicationFactor: 2,
		Network:           fnw,
		CallTimeout:       300 * time.Millisecond,
		Retry:             retrypolicy.Policy{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })

	cloud, err := cloudstore.Dial(ctx, fnw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cloud.Close() })

	a, err := New(Config{
		Name:           "inflight",
		Mode:           ModeRing,
		Index:          idx,
		Cloud:          cloud,
		LookupBatch:    4,
		UploadBatch:    8,
		HashWorkers:    4,
		LookupInflight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 128 unique fixed-size chunks; the ring dies once the first 32 are
	// acknowledged by the cloud, i.e. with the stream (and several
	// 4-chunk lookup batches) still in flight.
	data := make([]byte, 128*chunk.DefaultFixedSize)
	rand.New(rand.NewSource(21)).Read(data)
	const headChunks = 32
	head := headChunks * chunk.DefaultFixedSize
	acked := metrics.Default().Counter("agent_uploaded_chunks_total", "mode", ModeRing.String())
	base := acked.Value()
	gr := &gatedReader{
		head: bytes.NewReader(data[:head]),
		tail: bytes.NewReader(data[head:]),
		gate: func() {
			deadline := time.Now().Add(5 * time.Second)
			for acked.Value() < base+headChunks {
				if time.Now().After(deadline) {
					t.Error("uploader never acknowledged the head chunks")
					break
				}
				time.Sleep(time.Millisecond)
			}
			for _, addr := range kvAddrs {
				fabric.Isolate(addr)
			}
		},
	}

	rep, err := a.ProcessStream(ctx, "f", gr)
	if err != nil {
		t.Fatalf("stream failed despite the downgrade ladder: %v", err)
	}
	if rep.Downgrades == 0 || rep.DegradedLookups == 0 {
		t.Fatalf("ring outage not recorded as a downgrade: %+v", rep)
	}
	if !a.Degraded() {
		t.Fatal("agent not marked degraded after mid-stream ring outage")
	}
	if rep.InputChunks != 128 || rep.UploadedChunks != 128 {
		t.Fatalf("chunk accounting off: %+v", rep)
	}

	got, err := cloud.Restore(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded-mode restore is not byte-identical")
	}
}
