package agent

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"efdedup/internal/chunk"
)

// smallGear returns a 64/256/1024 chunker so tests cross many boundaries
// with small inputs.
func smallGear(t *testing.T) *chunk.GearChunker {
	t.Helper()
	g, err := chunk.NewGearChunker(64, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// reportsEqual compares Reports modulo Duration (wall clock is the one
// field concurrency may change).
func reportsEqual(a, b Report) bool {
	a.Duration, b.Duration = 0, 0
	return a == b
}

// TestConcurrentStreamsEquivalence runs many streams through ONE agent
// concurrently and checks each stream's report and manifest are
// bit-identical to the same stream processed alone on a fresh agent:
// the shared scheduler may interleave work any way it likes, but
// per-stream results must not change.
func TestConcurrentStreamsEquivalence(t *testing.T) {
	const streams = 24
	rng := rand.New(rand.NewSource(21))
	inputs := make([][]byte, streams)
	for i := range inputs {
		// Mixed sizes: empty, tiny, and multi-chunk with shared content
		// so cross-stream dedup paths light up too.
		n := []int{0, 100, 4 << 10, 64 << 10, 256 << 10}[i%5]
		inputs[i] = make([]byte, n)
		rng.Read(inputs[i])
	}

	// Boundary oracle per stream: the chunker is deterministic, so the
	// concurrent manifests must equal a plain SplitBytes run.
	wantManifests := make([][]chunk.ID, streams)
	for i, in := range inputs {
		cks, err := chunk.SplitBytes(smallGear(t), in)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cks {
			wantManifests[i] = append(wantManifests[i], c.ID)
		}
	}

	tb := newTestbed(t, 3)
	cl := tb.cloudClient(t)
	a, err := New(Config{
		Name: "conc", Mode: ModeRing,
		Index: tb.ringIndex(t, 0), Cloud: cl,
		Chunker: smallGear(t),
		// Small pools + tiny budget: maximum cross-stream contention.
		HashWorkers: 2, LookupInflight: 2,
		MaxStreams: 8, ArenaBudgetBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-register every stream's content on a second agent so lookups
	// are warm and reports are independent of concurrent upload races:
	// each stream then re-deduplicates its own content.
	warm, err := New(Config{
		Name: "warm", Mode: ModeRing,
		Index: tb.ringIndex(t, 0), Cloud: tb.cloudClient(t),
		Chunker: smallGear(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		if _, err := warm.ProcessBytes(context.Background(), fmt.Sprintf("warm-%d", i), in); err != nil {
			t.Fatal(err)
		}
	}
	// Re-derive the oracle against a warm index: same inputs, fresh
	// sequential agent, everything a duplicate.
	warmWant := make([]Report, streams)
	for i, in := range inputs {
		rep, err := warm.ProcessBytes(context.Background(), fmt.Sprintf("warmseq-%d", i), in)
		if err != nil {
			t.Fatal(err)
		}
		rep.Name = fmt.Sprintf("conc-%d", i)
		warmWant[i] = rep
	}

	var wg sync.WaitGroup
	got := make([]Report, streams)
	errs := make([]error, streams)
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("conc-%d", i)
			got[i], errs[i] = a.ProcessBytes(context.Background(), name, inputs[i])
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		if errs[i] != nil {
			t.Fatalf("concurrent stream %d: %v", i, errs[i])
		}
		if !reportsEqual(got[i], warmWant[i]) {
			t.Errorf("stream %d report diverged under concurrency:\n got %+v\nwant %+v", i, got[i], warmWant[i])
		}
		m, err := cl.GetManifest(context.Background(), fmt.Sprintf("conc-%d", i))
		if err != nil {
			t.Fatalf("manifest conc-%d: %v", i, err)
		}
		if len(m) != len(wantManifests[i]) {
			t.Fatalf("stream %d manifest has %d chunks, want %d", i, len(m), len(wantManifests[i]))
		}
		for j := range m {
			if m[j] != wantManifests[i][j] {
				t.Fatalf("stream %d manifest chunk %d diverged", i, j)
			}
		}
	}

	// The scheduler must be fully drained: no arena bytes outstanding,
	// and the worker pools wind down to zero once the last stream left.
	if a.sched.budget != nil {
		a.sched.budget.mu.Lock()
		used, waiters := a.sched.budget.used, len(a.sched.budget.waiters)
		a.sched.budget.mu.Unlock()
		if used != 0 || waiters != 0 {
			t.Fatalf("arena budget not drained: used=%d waiters=%d", used, waiters)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		a.sched.mu.Lock()
		live := a.sched.hashLive + a.sched.lookLive
		streamsLeft := a.sched.streams
		a.sched.mu.Unlock()
		if live == 0 && streamsLeft == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler workers did not exit: live=%d streams=%d", live, streamsLeft)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedulerRoundRobin pins the fairness policy at the queue level:
// with one stream holding a deep backlog and another submitting a single
// job, pops must alternate — the deep queue yields after every job.
// (White-box: a zero-worker scheduler so pops are driven by the test.)
func TestSchedulerRoundRobin(t *testing.T) {
	s := newScheduler(0, 0, 0, newAgentMetrics(ModeRing))
	big := s.attach(&pipeline{})
	small := s.attach(&pipeline{})

	jobs := make(map[*hashJob]string)
	push := func(slot *streamSlot, label string) {
		j := &hashJob{done: make(chan struct{}, 1)}
		jobs[j] = label
		s.submitHash(slot, j)
	}
	push(big, "big-1")
	push(big, "big-2")
	push(big, "big-3")
	push(small, "small-1")

	var order []string
	s.mu.Lock()
	for i := 0; i < 4; i++ {
		_, j, ok := s.nextHash()
		if !ok {
			t.Fatal("queue drained early")
		}
		order = append(order, jobs[j])
	}
	s.mu.Unlock()
	want := []string{"big-1", "small-1", "big-2", "big-3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order %v, want %v (round-robin)", order, want)
		}
	}
	s.detach(big)
	s.detach(small)
}

// TestByteBudgetFIFO pins admission ordering: freed bytes go to the
// oldest waiter even when a younger, smaller request would fit.
func TestByteBudgetFIFO(t *testing.T) {
	b := newByteBudget(100, newAgentMetrics(ModeRing))
	b.acquire(80)

	bigDone := make(chan struct{})
	go func() {
		b.acquire(60) // waits: only 20 free
		close(bigDone)
	}()
	// Wait until the 60-byte request is parked.
	for {
		b.mu.Lock()
		n := len(b.waiters)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan struct{})
	go func() {
		b.acquire(10) // would fit, but must queue behind the 60
		close(smallDone)
	}()
	for {
		b.mu.Lock()
		n := len(b.waiters)
		b.mu.Unlock()
		if n == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-smallDone:
		t.Fatal("small request barged past a waiting large request")
	case <-time.After(10 * time.Millisecond):
	}
	b.release(80) // 100 free: grants 60 then 10, in order
	<-bigDone
	<-smallDone
	// Oversized requests clamp to the budget instead of deadlocking.
	done := make(chan struct{})
	go func() {
		b.release(60)
		b.release(10)
		b.acquire(10_000)
		b.release(10_000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("oversized acquire deadlocked")
	}
}

// TestMaxStreamsAdmission checks the MaxStreams gate: a second stream
// waits for the first seat, and a cancelled context aborts the wait.
func TestMaxStreamsAdmission(t *testing.T) {
	tb := newTestbed(t, 1)
	a, err := New(Config{
		Name: "gate", Mode: ModeCloudAssisted,
		Cloud:      tb.cloudClient(t),
		Chunker:    smallGear(t),
		MaxStreams: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only seat with a stream whose reader blocks until told.
	release := make(chan struct{})
	first := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		_, err := a.ProcessStream(context.Background(), "holder", &seatReader{
			started: started, release: release, data: bytes.Repeat([]byte{7}, 4096),
		})
		first <- err
	}()
	<-started

	// Admission with a dead context fails without taking the seat.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.ProcessBytes(ctx, "cancelled", []byte("xx")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled admission returned %v, want context.Canceled", err)
	}

	// A live waiter gets the seat once the holder finishes.
	second := make(chan error, 1)
	go func() {
		_, err := a.ProcessBytes(context.Background(), "waiter", []byte("yy"))
		second <- err
	}()
	select {
	case err := <-second:
		t.Fatalf("second stream finished while the seat was held (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("holder stream: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("waiting stream: %v", err)
	}
}

// seatReader signals started on the first Read and then blocks until
// release is closed, after which it serves data.
type seatReader struct {
	started chan struct{}
	release chan struct{}
	data    []byte
	once    sync.Once
	served  bool
}

func (g *seatReader) Read(p []byte) (int, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	if g.served {
		return 0, io.EOF
	}
	g.served = true
	return copy(p, g.data), nil
}

// TestConcurrentCancellation cancels half the streams mid-flight and
// checks the survivors finish, the cancelled ones error, and the arena
// budget drains to zero (every payload released exactly once).
func TestConcurrentCancellation(t *testing.T) {
	tb := newTestbed(t, 3)
	a, err := New(Config{
		Name: "cancel", Mode: ModeRing,
		Index: tb.ringIndex(t, 0), Cloud: tb.cloudClient(t),
		Chunker:     smallGear(t),
		HashWorkers: 2, LookupInflight: 2,
		ArenaBudgetBytes: 128 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	const streams = 16
	rng := rand.New(rand.NewSource(31))
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		data := make([]byte, 128<<10)
		rng.Read(data)
		ctx := context.Background()
		var cancel context.CancelFunc
		if i%2 == 0 {
			ctx, cancel = context.WithCancel(ctx)
			delay := time.Duration(rng.Intn(3)) * time.Millisecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
		}
		wg.Add(1)
		go func(i int, ctx context.Context, data []byte) {
			defer wg.Done()
			_, errs[i] = a.ProcessBytes(ctx, fmt.Sprintf("c-%d", i), data)
		}(i, ctx, data)
	}
	wg.Wait()
	for i := 1; i < streams; i += 2 {
		if errs[i] != nil {
			t.Fatalf("uncancelled stream %d failed: %v", i, errs[i])
		}
	}
	// Cancelled streams may or may not have raced the cancel; either
	// outcome is fine — what matters is the budget drains.
	if a.sched.budget != nil {
		a.sched.budget.mu.Lock()
		used, waiters := a.sched.budget.used, len(a.sched.budget.waiters)
		a.sched.budget.mu.Unlock()
		if used != 0 || waiters != 0 {
			t.Fatalf("arena budget leaked after cancellations: used=%d waiters=%d", used, waiters)
		}
	}
}
