package agent

// The per-stream dedup pipeline, restructured as concurrent stages
// connected by bounded channels (cf. the pipelined/parallel fingerprinting
// designs of THR and P-Dedupe):
//
//	chunker (caller goroutine, SplitRaw / SplitRawBytes)
//	   │  hashOrder (FIFO, cap 2·HashWorkers+hashOrderSlack) + shared hash pool
//	   ▼
//	shared hash pool ×HashWorkers per agent — SHA-256 per chunk
//	   ▼  ordered delivery: collector waits each hashOrder job's done token
//	collector — manifest append, intra-stream dedup, lookup batching
//	   │  lookupOrder (FIFO, cap LookupInflight) + shared lookup pool
//	   ▼
//	shared lookup pool ×LookupInflight per agent — BatchHas (downgrade ladder)
//	   ▼  ordered delivery via lookupOrder done tokens
//	router — duplicate suppression, upload batching
//	   │  uploads (cap 4 batches)
//	   ▼
//	uploader — BatchUpload, acknowledged accounting, ring index registration
//
// The hash and lookup stages are served by the agent's shared scheduler
// (scheduler.go): the pools are sized once per agent and drained
// round-robin across every active stream, so N concurrent ProcessStream
// calls share HashWorkers + LookupInflight workers instead of spawning
// N× that many goroutines.
//
// Ordering guarantee: the collector and router consume their stages'
// output strictly in stream order (jobs enter the FIFO channel before
// the shared pool's queue and carry a done token), so the manifest, the
// seen-map decisions, upload batch composition and Report counters are
// identical to the sequential pipeline's, bit for bit, for any
// HashWorkers and LookupInflight and any stream interleaving — only
// wall-clock overlap changes.
//
// Memory bound: chunk payloads live in the chunk-buffer arena and are
// released exactly once — by the collector (intra-stream duplicate), the
// router (index-known duplicate), the uploader (after the cloud acked or
// failed the batch), or a draining stage after a fatal error. Per-stream
// in-flight payloads are capped by the channel bounds:
//
//	inflight chunks ≤ (2·HashWorkers+hashOrderSlack) + 1  — hash stage
//	                + (LookupInflight+1)·LookupBatch       — lookup stage
//	                + (uploadQueueDepth+2)·UploadBatch     — upload stage
//
// each at most one max-size chunk — and the agent-wide total is capped
// in bytes by Config.ArenaBudgetBytes: every payload's capacity is
// acquired from the scheduler's byte budget before it enters hashOrder
// and released with the payload, so aggregate pipeline memory stays
// bounded no matter how many streams are admitted.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
)

// uploadQueueDepth is the upload channel's batch capacity (the +2 in the
// memory bound: one batch accumulating in the router, one in the
// uploader's hands).
const uploadQueueDepth = 4

// hashOrderSlack is extra hashOrder buffering beyond the hash workers'
// own queue. It lets the chunker and the collector run in long bursts
// instead of lockstep per-chunk handoffs — on machines where GOMAXPROCS
// exceeds the physical cores, every handoff that blocks is a thread
// switch, and a shallow FIFO was measurably the bottleneck.
const hashOrderSlack = 62

// hashJob carries one chunk from the chunker through a hash worker to
// the ordered collector. done is buffered (capacity 1) and receives one
// token when the ID is computed; jobs recycle through hashJobPool with
// their done channel intact.
type hashJob struct {
	c    chunk.Chunk
	done chan struct{}
}

var hashJobPool = sync.Pool{New: func() any { return &hashJob{done: make(chan struct{}, 1)} }}

// lookupJob carries one lookup batch from the collector through a lookup
// worker to the ordered router.
type lookupJob struct {
	batch []chunk.Chunk
	known []bool
	err   error
	done  chan struct{}
}

var lookupJobPool = sync.Pool{New: func() any { return &lookupJob{done: make(chan struct{}, 1)} }}

// release returns a chunk payload to the chunk-buffer arena and credits
// its bytes back to the agent's admission budget. Safe for payloads
// that did not come from the arena (legacy Split chunkers hand out
// fresh slices we own by contract, SplitRawBytes hands out aliases the
// arena refuses); the budget charge is symmetric with admission either
// way. Each payload is released exactly once (see the memory bound
// above), so the credit cannot double-count.
func (p *pipeline) release(c chunk.Chunk) {
	chunk.Raw{Data: c.Data}.Release()
	p.a.sched.budget.release(int64(cap(c.Data)))
}

// pipeline is one stream's staged state machine. The fields below are
// partitioned by owning stage; cross-stage values are atomic and folded
// into rep by finish(), which runs after every stage has exited.
type pipeline struct {
	a   *Agent
	ctx context.Context

	// Collector-owned (read by finish after the stage-exit chain).
	rep        Report
	manifest   []chunk.ID
	seen       map[chunk.ID]bool
	cur        *lookupJob
	lastArrive time.Time

	// Cross-stage counters.
	dupChunks       atomic.Int64
	degradedLookups atomic.Int64
	downgrades      atomic.Int64
	recoveries      atomic.Int64
	lookupsInflight atomic.Int64

	// slot is this stream's seat in the agent's shared scheduler.
	slot *streamSlot

	// inlineHash short-circuits the hash stage when the pool has exactly
	// one worker: the chunker hashes in place, skipping two handoffs per
	// chunk that buy no parallelism. (With concurrent streams this hashes
	// on each stream's own goroutine — the degenerate one-worker budget
	// is per-stream, which only matters on a one-core box.)
	inlineHash bool

	// stop is closed at the first fatal error: the chunker aborts and
	// the downstream stages drain, releasing payloads unprocessed.
	stop     chan struct{}
	stopOnce sync.Once
	fatalMu  sync.Mutex
	fatalErr error

	hashOrder   chan *hashJob
	lookupOrder chan *lookupJob

	// Stage-exit joins: closed when the collector / router goroutine
	// returns. finish waits on both — the uploadErr buffer alone is not
	// a join point, because a failing uploader reports its error before
	// the upstream stages have drained.
	collectDone chan struct{}
	routeDone   chan struct{}

	// Router-owned.
	pendingUpload []chunk.Chunk

	uploads   chan []chunk.Chunk
	uploadErr chan error

	// Written by the uploader goroutine, read by finish() after the
	// uploader exits: only chunks the cloud acknowledged are counted, so
	// Report.Uploaded* matches the store's contents even when a stream
	// aborts mid-upload.
	uploadedChunks atomic.Int64
	uploadedBytes  atomic.Int64

	indexWG          sync.WaitGroup
	indexMu          sync.Mutex
	indexErr         error
	indexSem         chan struct{}
	indexInsertFails atomic.Int64
}

func (a *Agent) newPipeline(ctx context.Context, name string) *pipeline {
	hw := a.cfg.HashWorkers
	li := a.cfg.LookupInflight
	p := &pipeline{
		a:           a,
		ctx:         ctx,
		rep:         Report{Name: name},
		seen:        make(map[chunk.ID]bool),
		lastArrive:  time.Now(),
		stop:        make(chan struct{}),
		hashOrder:   make(chan *hashJob, 2*hw+hashOrderSlack),
		lookupOrder: make(chan *lookupJob, li),
		collectDone: make(chan struct{}),
		routeDone:   make(chan struct{}),
		uploads:     make(chan []chunk.Chunk, uploadQueueDepth),
		uploadErr:   make(chan error, 1),
		indexSem:    make(chan struct{}, 4),
	}
	p.inlineHash = hw == 1
	// Hash and lookup work go to the agent's shared pools; only the
	// stream-ordered stage drivers are per-pipeline goroutines.
	p.slot = a.sched.attach(p)
	go p.collect()
	go p.route()
	go p.upload()
	return p
}

// fail records the first fatal error and flips the pipeline into drain
// mode.
func (p *pipeline) fail(err error) {
	p.fatalMu.Lock()
	if p.fatalErr == nil {
		p.fatalErr = err
	}
	p.fatalMu.Unlock()
	p.stopOnce.Do(func() { close(p.stop) })
}

func (p *pipeline) fatal() error {
	p.fatalMu.Lock()
	defer p.fatalMu.Unlock()
	return p.fatalErr
}

func (p *pipeline) aborted() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

// run drives the chunker. RawChunkers feed the hash pool unhashed
// pooled payloads; legacy Chunkers arrive pre-hashed and skip the hash
// stage (their jobs enter the FIFO with the done token pre-filled).
func (p *pipeline) run(r io.Reader) error {
	if rc, ok := p.a.cfg.Chunker.(chunk.RawChunker); ok {
		return rc.SplitRaw(r, p.addRaw)
	}
	return p.a.cfg.Chunker.Split(r, p.addHashed)
}

// runBytes drives the chunker over an in-memory stream, using the
// zero-copy scanner when the chunker offers one (payloads then alias
// data, which outlives the pipeline — ProcessBytes holds it until
// finish has joined every stage).
func (p *pipeline) runBytes(data []byte) error {
	if bc, ok := p.a.cfg.Chunker.(chunk.RawBytesChunker); ok {
		return bc.SplitRawBytes(data, p.addRaw)
	}
	return p.run(bytes.NewReader(data))
}

// addRaw receives one unhashed chunk from the chunker, in stream order.
// Ownership of the payload transfers to the hash stage. The payload's
// bytes are admitted against the agent-wide budget here — before the
// FIFO — so a stream blocked on admission holds no pipeline slots.
func (p *pipeline) addRaw(raw chunk.Raw) error {
	if p.aborted() {
		raw.Release()
		return p.fatal()
	}
	p.a.sched.budget.acquire(int64(cap(raw.Data)))
	job := hashJobPool.Get().(*hashJob)
	job.c = chunk.Chunk{Offset: raw.Offset, Data: raw.Data}
	if p.inlineHash {
		job.c.ID = chunk.Sum(job.c.Data)
		job.done <- struct{}{}
		p.hashOrder <- job
		return nil
	}
	// FIFO first: the collector must see jobs in stream order, and the
	// order channel's bound is what caps this stream's in-flight chunks.
	p.hashOrder <- job
	p.a.sched.submitHash(p.slot, job)
	return nil
}

// addHashed receives one pre-hashed chunk from a legacy Chunker.
func (p *pipeline) addHashed(c chunk.Chunk) error {
	if p.aborted() {
		return p.fatal()
	}
	p.a.sched.budget.acquire(int64(cap(c.Data)))
	job := hashJobPool.Get().(*hashJob)
	job.c = c
	job.done <- struct{}{}
	p.hashOrder <- job
	return nil
}

// collect consumes hashed chunks in stream order: manifest append,
// intra-stream duplicate suppression, lookup batching. It owns the
// lookup stage's input channels and closes them on the way out.
func (p *pipeline) collect() {
	defer close(p.collectDone)
	for job := range p.hashOrder {
		<-job.done
		c := job.c
		job.c = chunk.Chunk{}
		hashJobPool.Put(job)

		p.a.met.chunkProduce.ObserveDuration(time.Since(p.lastArrive))
		p.lastArrive = time.Now()
		p.a.met.chunkBytes.Observe(int64(len(c.Data)))

		p.manifest = append(p.manifest, c.ID)
		p.rep.InputBytes += int64(len(c.Data))
		p.rep.InputChunks++
		if p.aborted() {
			p.release(c)
			continue
		}
		if p.seen[c.ID] {
			p.dupChunks.Add(1)
			p.a.met.dupChunks.Inc()
			p.release(c)
			continue
		}
		p.seen[c.ID] = true
		if p.cur == nil {
			p.cur = lookupJobPool.Get().(*lookupJob)
		}
		p.cur.batch = append(p.cur.batch, c)
		if len(p.cur.batch) >= p.a.cfg.LookupBatch {
			p.dispatchLookup()
		}
	}
	if !p.aborted() {
		p.dispatchLookup() // partial tail batch
	} else if p.cur != nil {
		for _, c := range p.cur.batch {
			p.release(c)
		}
		putLookupJob(p.cur)
		p.cur = nil
	}
	close(p.lookupOrder)
}

// dispatchLookup hands the accumulating batch to the shared lookup
// pool, keeping at most LookupInflight of this stream's batches in
// flight (the order channel's capacity provides the backpressure).
func (p *pipeline) dispatchLookup() {
	job := p.cur
	if job == nil || len(job.batch) == 0 {
		return
	}
	p.cur = nil
	n := p.lookupsInflight.Add(1)
	p.a.met.lookupInflight.Set(n)
	p.a.met.lookupInflightHist.Observe(n)
	p.lookupOrder <- job
	p.a.sched.submitLookup(p.slot, job)
}

func putLookupJob(job *lookupJob) {
	job.batch = job.batch[:0]
	job.known = nil
	job.err = nil
	lookupJobPool.Put(job)
}

// route consumes resolved batches in stream order, suppresses
// index-known duplicates and feeds the uploader. It owns the uploads
// channel and closes it on the way out.
func (p *pipeline) route() {
	defer close(p.routeDone)
	for job := range p.lookupOrder {
		<-job.done
		switch {
		case job.err != nil:
			p.fail(job.err)
			fallthrough
		case p.aborted():
			for _, c := range job.batch {
				p.release(c)
			}
		default:
			for i, c := range job.batch {
				if job.known[i] {
					p.dupChunks.Add(1)
					p.a.met.dupChunks.Inc()
					p.release(c)
					continue
				}
				p.pendingUpload = append(p.pendingUpload, c)
				if len(p.pendingUpload) >= p.a.cfg.UploadBatch {
					p.queueUpload()
				}
			}
		}
		putLookupJob(job)
	}
	if !p.aborted() {
		p.queueUpload() // partial tail batch
	} else {
		for _, c := range p.pendingUpload {
			p.release(c)
		}
		p.pendingUpload = nil
	}
	close(p.uploads)
}

// queueUpload hands the pending chunks to the asynchronous uploader.
// Upload accounting happens in the uploader itself, on acknowledgement —
// counting here would credit chunks that a failed or aborted upload
// never delivered, so Report could claim more than the cloud held.
func (p *pipeline) queueUpload() {
	if len(p.pendingUpload) == 0 {
		return
	}
	batch := make([]chunk.Chunk, len(p.pendingUpload))
	copy(batch, p.pendingUpload)
	p.a.met.uploadQueue.Add(1)
	p.uploads <- batch
	p.pendingUpload = p.pendingUpload[:0]
}

// upload ships batches to the cloud. A batch's chunks are counted and
// its hashes registered in the ring index only after the cloud
// acknowledges it; payloads return to the arena either way.
func (p *pipeline) upload() {
	defer close(p.uploadErr)
	for batch := range p.uploads {
		p.a.met.uploadQueue.Add(-1)
		sp := metrics.StartTimer(p.a.met.uploadLat)
		_, err := p.a.cfg.Cloud.BatchUpload(p.ctx, batch)
		sp.End()
		if err != nil {
			for _, c := range batch {
				p.release(c)
			}
			p.uploadErr <- fmt.Errorf("agent: upload batch: %w", err)
			// Drain remaining batches so the producer never blocks.
			// Dropped batches are deliberately not counted: they never
			// reached the cloud.
			for batch := range p.uploads {
				p.a.met.uploadQueue.Add(-1)
				for _, c := range batch {
					p.release(c)
				}
			}
			return
		}
		var batchBytes int64
		for _, c := range batch {
			batchBytes += int64(len(c.Data))
		}
		p.uploadedChunks.Add(int64(len(batch)))
		p.uploadedBytes.Add(batchBytes)
		p.a.met.uploadedChunks.Add(int64(len(batch)))
		p.a.met.uploadedBytes.Add(batchBytes)
		p.a.met.uploadBatch.Observe(int64(len(batch)))
		// Payloads are dead once the cloud acked the batch; only the
		// content IDs flow on to the ring index.
		for _, c := range batch {
			p.release(c)
		}
		// Only now — with the batch durable in the cloud — are its
		// hashes registered in the ring index. Registering at lookup
		// time could advertise chunks that a mid-stream abort never
		// uploaded, making peers skip uploads for data the cloud does
		// not hold.
		if p.a.cfg.Mode == ModeRing {
			p.registerFresh(batch)
		}
	}
}

// registerFresh records the batch's hashes in the ring index, off the
// critical path (our own later batches are covered by the local seen
// set). Called from the uploader goroutine strictly after the batch was
// acknowledged by the cloud, preserving the invariant that the index
// never references a chunk the cloud lacks.
func (p *pipeline) registerFresh(batch []chunk.Chunk) {
	keys := make([][]byte, len(batch))
	values := make([][]byte, len(batch))
	// One owner-name conversion for the whole batch: BatchPut encodes
	// values into the wire body without retaining or mutating them, so
	// every entry can share the same backing bytes (hotalloc).
	owner := []byte(p.a.cfg.Name)
	for i, c := range batch {
		id := c.ID
		keys[i] = id[:]
		values[i] = owner
	}
	p.indexSem <- struct{}{}
	p.indexWG.Add(1)
	go func() {
		defer p.indexWG.Done()
		defer func() { <-p.indexSem }()
		sp := metrics.StartTimer(p.a.met.insertLat)
		err := p.a.cfg.Index.BatchPut(p.ctx, keys, values)
		sp.End()
		if err == nil {
			return
		}
		// A missed insert only costs future dedup hits (peers re-upload
		// those chunks), so in degraded-tolerant mode it is counted, not
		// fatal. Cancellation stays fatal so aborted streams abort.
		if p.a.cfg.StrictRing || p.ctx.Err() != nil {
			p.indexMu.Lock()
			if p.indexErr == nil {
				p.indexErr = fmt.Errorf("agent: index insert: %w", err)
			}
			p.indexMu.Unlock()
			return
		}
		// A partial write names exactly the under-replicated keys; only
		// those count as failures. Anything else loses the whole batch.
		failed := int64(len(keys))
		var partial *kvstore.PartialWriteError
		if errors.As(err, &partial) {
			failed = int64(len(partial.FailedKeys))
		}
		p.indexInsertFails.Add(failed)
		p.a.met.insertFails.Add(failed)
	}()
}

// finish joins the stage-exit chain and reports the first error among
// the stream error, fatal stage errors, upload failures and index
// failures. The chain — chunker done → hash stage closed → collector
// exits (closing the lookup stage) → router exits (closing uploads) →
// uploader exits (closing uploadErr) — also sequences the memory model:
// every stage's writes happen before finish reads them.
func (p *pipeline) finish(streamErr error) (Report, error) {
	if streamErr != nil {
		p.fail(streamErr)
	}
	close(p.hashOrder)
	<-p.collectDone
	<-p.routeDone
	uploadFailure := <-p.uploadErr
	p.indexWG.Wait()
	// Stages have joined, so every submitted job was popped and answered
	// (the collector/router awaited each done token): the slot's queues
	// are empty and the seat can be returned.
	p.a.sched.detach(p.slot)
	p.rep.DuplicateChunks = p.dupChunks.Load()
	p.rep.UploadedChunks = p.uploadedChunks.Load()
	p.rep.UploadedBytes = p.uploadedBytes.Load()
	p.rep.Downgrades = p.downgrades.Load()
	p.rep.Recoveries = p.recoveries.Load()
	p.rep.DegradedLookups = p.degradedLookups.Load()
	p.rep.IndexInsertFailures = p.indexInsertFails.Load()
	p.indexMu.Lock()
	indexFailure := p.indexErr
	p.indexMu.Unlock()
	switch {
	case streamErr != nil:
		return p.rep, streamErr
	case p.fatal() != nil:
		// A stage failed (e.g. a lookup batch) after the chunker had
		// already finished, so no stream error carried it here.
		return p.rep, p.fatal()
	case uploadFailure != nil:
		return p.rep, uploadFailure
	case indexFailure != nil:
		return p.rep, indexFailure
	}
	return p.rep, nil
}

// lookup answers which chunks in the batch are already indexed.
//
// In ModeRing (without StrictRing) it walks a downgrade ladder instead of
// failing the stream: ring index → cloud-assisted lookup → assume-fresh.
// Every rung preserves correctness — a chunk wrongly treated as fresh is
// re-deduplicated by the cloud's own index on upload — so ring outages
// cost WAN bytes, never data. The ring is still tried first on every
// batch: while its breakers are open those attempts fail fast, and the
// first one that succeeds after an outage is the recovery transition.
// Called concurrently by up to LookupInflight workers; all accounting is
// atomic.
func (p *pipeline) lookup(batch []chunk.Chunk) ([]bool, error) {
	a := p.a
	switch a.cfg.Mode {
	case ModeRing:
		keys := make([][]byte, len(batch))
		for i := range batch {
			id := batch[i].ID
			keys[i] = id[:]
		}
		known, err := a.cfg.Index.BatchHas(p.ctx, keys)
		if err == nil {
			if a.noteRecovery() {
				p.recoveries.Add(1)
				a.met.recoveries.Inc()
			}
			return known, nil
		}
		if p.ctx.Err() != nil || a.cfg.StrictRing {
			return nil, fmt.Errorf("agent: ring lookup: %w", err)
		}
		if a.noteDowngrade() {
			p.downgrades.Add(1)
			a.met.downgrades.Inc()
		}
		p.degradedLookups.Add(int64(len(batch)))
		a.met.degradedLookups.Add(int64(len(batch)))
		fallthrough
	case ModeCloudAssisted:
		ids := make([]chunk.ID, len(batch))
		for i := range batch {
			ids[i] = batch[i].ID
		}
		known, err := a.cfg.Cloud.BatchHas(p.ctx, ids)
		if err == nil {
			return known, nil
		}
		if a.cfg.Mode == ModeCloudAssisted {
			// The cloud is this mode's only index; nothing to fall back to
			// but the uploader, which needs the same cloud anyway.
			return nil, fmt.Errorf("agent: cloud lookup: %w", err)
		}
		if p.ctx.Err() != nil {
			return nil, fmt.Errorf("agent: cloud lookup: %w", err)
		}
		// Bottom rung: assume every chunk fresh and let the cloud's own
		// index dedup on upload (ModeCloudOnly semantics per batch).
		return make([]bool, len(batch)), nil
	default:
		return nil, fmt.Errorf("%w: lookup in mode %s", ErrConfig, a.cfg.Mode)
	}
}
