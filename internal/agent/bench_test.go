package agent

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/transport"
)

// benchStreamBytes is the per-iteration input volume. Large enough that
// per-stream fixed costs (manifest put, pipeline setup) are noise next to
// the per-chunk work the benchmark is about.
const benchStreamBytes = 32 << 20

// benchTestbed wires the same in-proc deployment the agent tests use —
// memory network, cloud store, three KV daemons — without *testing.T
// plumbing so benchmarks can own setup/teardown placement.
type benchTestbed struct {
	nw      *transport.MemNetwork
	cloud   *cloudstore.Server
	nodes   []*kvstore.Node
	kvAddrs []string
}

func newBenchTestbed(b *testing.B, kvNodes int) *benchTestbed {
	b.Helper()
	tb := &benchTestbed{nw: transport.NewMemNetwork()}
	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		b.Fatal(err)
	}
	l, err := tb.nw.Listen("cloud")
	if err != nil {
		b.Fatal(err)
	}
	srv.Serve(l)
	b.Cleanup(func() { srv.Close() })
	tb.cloud = srv
	for i := 0; i < kvNodes; i++ {
		node, err := kvstore.NewNode(kvstore.NodeConfig{})
		if err != nil {
			b.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		lk, err := tb.nw.Listen(addr)
		if err != nil {
			b.Fatal(err)
		}
		node.Serve(lk)
		b.Cleanup(func() { node.Close() })
		tb.nodes = append(tb.nodes, node)
		tb.kvAddrs = append(tb.kvAddrs, addr)
	}
	return tb
}

func (tb *benchTestbed) ringAgent(b *testing.B, cfg Config) *Agent {
	b.Helper()
	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:           tb.kvAddrs,
		ReplicationFactor: 2,
		LocalAddr:         tb.kvAddrs[0],
		Network:           tb.nw,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { idx.Close() })
	cl, err := cloudstore.Dial(context.Background(), tb.nw, "cloud")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	cfg.Mode = ModeRing
	cfg.Index = idx
	cfg.Cloud = cl
	if cfg.Name == "" {
		cfg.Name = "bench"
	}
	a, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAgentProcessStream measures end-to-end dedup throughput of the
// paper's hot path (Fig. 5a): gear chunking + SHA-256 + ring lookups over
// the in-proc transport. The stream is processed once outside the timer
// so the ring index is warm; every timed iteration then re-deduplicates
// the same 32 MiB, exercising chunking, hashing and index lookups at full
// intensity with no upload traffic to destabilize the measurement. Run
// with -cpu 1,4,8 to see how the pipeline scales with GOMAXPROCS.
func BenchmarkAgentProcessStream(b *testing.B) {
	tb := newBenchTestbed(b, 3)
	a := tb.ringAgent(b, Config{Chunker: chunk.NewDefaultGearChunker()})

	data := make([]byte, benchStreamBytes)
	rand.New(rand.NewSource(99)).Read(data)
	ctx := context.Background()
	if _, err := a.ProcessBytes(ctx, "warm", data); err != nil {
		b.Fatal(err)
	}

	b.SetBytes(benchStreamBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := a.ProcessBytes(ctx, fmt.Sprintf("bench-%d", i), data)
		if err != nil {
			b.Fatal(err)
		}
		if rep.UploadedChunks != 0 {
			b.Fatalf("warm stream uploaded %d chunks, want 0", rep.UploadedChunks)
		}
	}
}

// BenchmarkAgentConcurrentStreams measures aggregate multi-stream ingest
// through ONE agent's shared scheduler: 128 tasks of 1 MiB each, fanned
// out over 1, 16 or 128 concurrent streams. The work volume is constant,
// only the concurrency changes, so aggregate MB/s shows how well the
// shared hash/lookup pools convert extra streams into extra cores, and
// the reported p50/p99 per-stream latency shows what fairness costs the
// tail. Data is warm (uploaded once outside the timer), matching the
// steady-state dedup workload of BenchmarkAgentProcessStream.
func BenchmarkAgentConcurrentStreams(b *testing.B) {
	const (
		tasks    = 128
		taskSize = 1 << 20
	)
	for _, streams := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			tb := newBenchTestbed(b, 3)
			a := tb.ringAgent(b, Config{
				Chunker:    chunk.NewDefaultGearChunker(),
				MaxStreams: streams,
			})

			inputs := make([][]byte, tasks)
			rng := rand.New(rand.NewSource(7))
			ctx := context.Background()
			for i := range inputs {
				inputs[i] = make([]byte, taskSize)
				rng.Read(inputs[i])
				if _, err := a.ProcessBytes(ctx, fmt.Sprintf("warm-%d", i), inputs[i]); err != nil {
					b.Fatal(err)
				}
			}

			lats := make([]time.Duration, 0, tasks*b.N)
			b.SetBytes(tasks * taskSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var (
					wg sync.WaitGroup
					mu sync.Mutex
				)
				next := make(chan int, tasks)
				for t := 0; t < tasks; t++ {
					next <- t
				}
				close(next)
				for w := 0; w < streams; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for t := range next {
							start := time.Now()
							rep, err := a.ProcessBytes(ctx, fmt.Sprintf("run-%d", t), inputs[t])
							el := time.Since(start)
							if err != nil {
								b.Error(err)
								return
							}
							if rep.UploadedChunks != 0 {
								b.Errorf("warm stream uploaded %d chunks", rep.UploadedChunks)
								return
							}
							mu.Lock()
							lats = append(lats, el)
							mu.Unlock()
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			if n := len(lats); n > 0 {
				b.ReportMetric(float64(lats[n/2].Microseconds())/1000, "p50-ms")
				b.ReportMetric(float64(lats[n*99/100].Microseconds())/1000, "p99-ms")
			}
		})
	}
}
