package agent

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/transport"
)

// testbed wires a memory network with a cloud store and n KV nodes.
type testbed struct {
	nw      *transport.MemNetwork
	cloud   *cloudstore.Server
	kvAddrs []string
}

func newTestbed(t *testing.T, kvNodes int) *testbed {
	t.Helper()
	tb := &testbed{nw: transport.NewMemNetwork()}
	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := tb.nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	tb.cloud = srv

	for i := 0; i < kvNodes; i++ {
		node, err := kvstore.NewNode(kvstore.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		lk, err := tb.nw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(lk)
		t.Cleanup(func() { node.Close() })
		tb.kvAddrs = append(tb.kvAddrs, addr)
	}
	return tb
}

func (tb *testbed) cloudClient(t *testing.T) *cloudstore.Client {
	t.Helper()
	cl, err := cloudstore.Dial(context.Background(), tb.nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func (tb *testbed) ringIndex(t *testing.T, localIdx int) *kvstore.Cluster {
	t.Helper()
	cfg := kvstore.ClusterConfig{
		Members:           tb.kvAddrs,
		ReplicationFactor: 2,
		Network:           tb.nw,
	}
	if localIdx >= 0 {
		cfg.LocalAddr = tb.kvAddrs[localIdx]
	}
	c, err := kvstore.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func ringAgent(t *testing.T, tb *testbed, name string, localIdx int) *Agent {
	t.Helper()
	a, err := New(Config{
		Name:  name,
		Mode:  ModeRing,
		Index: tb.ringIndex(t, localIdx),
		Cloud: tb.cloudClient(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	tb := newTestbed(t, 1)
	cloud := tb.cloudClient(t)
	if _, err := New(Config{Mode: ModeRing, Cloud: cloud}); err == nil {
		t.Error("ring mode without index accepted")
	}
	if _, err := New(Config{Mode: ModeCloudOnly}); err == nil {
		t.Error("missing cloud client accepted")
	}
	if _, err := New(Config{Mode: Mode(99), Cloud: cloud}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// duplicatedData builds a payload whose second half repeats the first.
func duplicatedData(seed int64, half int) []byte {
	rng := rand.New(rand.NewSource(seed))
	first := make([]byte, half)
	rng.Read(first)
	return append(append([]byte{}, first...), first...)
}

func TestRingModeDeduplicatesWithinStream(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "agent-0", 0)
	data := duplicatedData(1, 128*1024) // 256 KiB, second half duplicate

	rep, err := a.ProcessBytes(context.Background(), "f1", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputBytes != int64(len(data)) {
		t.Errorf("InputBytes = %d, want %d", rep.InputBytes, len(data))
	}
	if rep.InputChunks != 32 { // 256 KiB / 8 KiB
		t.Errorf("InputChunks = %d, want 32", rep.InputChunks)
	}
	if rep.DuplicateChunks != 16 {
		t.Errorf("DuplicateChunks = %d, want 16", rep.DuplicateChunks)
	}
	if rep.UploadedChunks != 16 {
		t.Errorf("UploadedChunks = %d, want 16", rep.UploadedChunks)
	}
	if got := rep.DedupRatio(); got < 1.9 || got > 2.1 {
		t.Errorf("DedupRatio = %v, want ≈2", got)
	}
}

func TestRingModeDeduplicatesAcrossAgents(t *testing.T) {
	tb := newTestbed(t, 3)
	a1 := ringAgent(t, tb, "agent-1", 0)
	a2 := ringAgent(t, tb, "agent-2", 1)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 200*1024)
	rng.Read(data)

	ctx := context.Background()
	rep1, err := a1.ProcessBytes(ctx, "a1-file", data)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := a2.ProcessBytes(ctx, "a2-file", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.UploadedChunks == 0 {
		t.Fatal("first agent uploaded nothing")
	}
	if rep2.UploadedChunks != 0 {
		t.Errorf("second agent uploaded %d chunks for identical content, want 0", rep2.UploadedChunks)
	}
	if rep2.DuplicateChunks != rep2.InputChunks {
		t.Errorf("second agent found %d/%d duplicates", rep2.DuplicateChunks, rep2.InputChunks)
	}
	// Cloud stores each unique chunk exactly once.
	if st := tb.cloud.Stats(); st.UniqueChunks != rep1.UploadedChunks {
		t.Errorf("cloud UniqueChunks = %d, want %d", st.UniqueChunks, rep1.UploadedChunks)
	}
}

func TestRingModeRestoreIdentity(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "agent-0", 0)
	data := duplicatedData(3, 64*1024)
	ctx := context.Background()
	if _, err := a.ProcessBytes(ctx, "file", data); err != nil {
		t.Fatal(err)
	}
	cl := tb.cloudClient(t)
	got, err := cl.Restore(ctx, "file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored file differs from input")
	}
}

func TestCloudAssistedMode(t *testing.T) {
	tb := newTestbed(t, 0)
	newAgent := func(name string) *Agent {
		a, err := New(Config{Name: name, Mode: ModeCloudAssisted, Cloud: tb.cloudClient(t)})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1, a2 := newAgent("ca-1"), newAgent("ca-2")
	data := duplicatedData(11, 96*1024)
	ctx := context.Background()

	rep1, err := a1.ProcessBytes(ctx, "f1", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.DuplicateChunks != rep1.InputChunks/2 {
		t.Errorf("in-stream duplicates = %d, want %d", rep1.DuplicateChunks, rep1.InputChunks/2)
	}
	rep2, err := a2.ProcessBytes(ctx, "f2", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.UploadedChunks != 0 {
		t.Errorf("cloud-assisted re-upload of known content: %d chunks", rep2.UploadedChunks)
	}
}

func TestCloudOnlyMode(t *testing.T) {
	tb := newTestbed(t, 0)
	a, err := New(Config{Name: "co", Mode: ModeCloudOnly, Cloud: tb.cloudClient(t)})
	if err != nil {
		t.Fatal(err)
	}
	data := duplicatedData(13, 64*1024)
	ctx := context.Background()
	rep, err := a.ProcessBytes(ctx, "raw1", data)
	if err != nil {
		t.Fatal(err)
	}
	// Cloud-only ships everything.
	if rep.UploadedBytes != int64(len(data)) {
		t.Errorf("UploadedBytes = %d, want %d", rep.UploadedBytes, len(data))
	}
	// But the cloud still deduplicates server-side.
	st := tb.cloud.Stats()
	if st.UniqueBytes >= int64(len(data)) {
		t.Errorf("cloud stored %d bytes, want < %d after dedup", st.UniqueBytes, len(data))
	}
	// Restore works.
	cl := tb.cloudClient(t)
	got, err := cl.Restore(ctx, "raw1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cloud-only restore differs")
	}
}

// TestModesAgreeOnCloudContents runs the same pair of streams through all
// three strategies (fresh testbeds) and verifies the cloud ends up with
// the same unique chunk set size — dedup quality is mode-independent for a
// single source; only *where* the work happens differs.
func TestModesAgreeOnCloudContents(t *testing.T) {
	data1 := duplicatedData(17, 80*1024)
	data2 := duplicatedData(17, 80*1024) // identical to data1

	uniqueFor := func(mode Mode) int64 {
		tb := newTestbed(t, 3)
		var a *Agent
		var err error
		switch mode {
		case ModeRing:
			a = ringAgent(t, tb, "x", 0)
		default:
			a, err = New(Config{Name: "x", Mode: mode, Cloud: tb.cloudClient(t)})
			if err != nil {
				t.Fatal(err)
			}
		}
		ctx := context.Background()
		if _, err := a.ProcessBytes(ctx, "s1", data1); err != nil {
			t.Fatal(err)
		}
		if _, err := a.ProcessBytes(ctx, "s2", data2); err != nil {
			t.Fatal(err)
		}
		return tb.cloud.Stats().UniqueChunks
	}

	ring := uniqueFor(ModeRing)
	assisted := uniqueFor(ModeCloudAssisted)
	only := uniqueFor(ModeCloudOnly)
	if ring != assisted || assisted != only {
		t.Fatalf("unique chunks diverge across modes: ring=%d assisted=%d only=%d", ring, assisted, only)
	}
}

func TestTotalsAccumulate(t *testing.T) {
	tb := newTestbed(t, 3)
	a := ringAgent(t, tb, "agent", 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := a.ProcessBytes(ctx, fmt.Sprintf("f%d", i), duplicatedData(int64(i), 32*1024)); err != nil {
			t.Fatal(err)
		}
	}
	tot := a.Totals()
	if tot.InputBytes != 3*64*1024 {
		t.Errorf("Totals.InputBytes = %d, want %d", tot.InputBytes, 3*64*1024)
	}
	if tot.InputChunks != 24 {
		t.Errorf("Totals.InputChunks = %d, want 24", tot.InputChunks)
	}
}

func TestReportThroughputAndRatio(t *testing.T) {
	r := Report{}
	if r.Throughput() != 0 {
		t.Error("zero-duration throughput not 0")
	}
	if r.DedupRatio() != 1 {
		t.Error("empty report ratio not 1")
	}
	r = Report{InputBytes: 100, UploadedBytes: 0}
	if r.DedupRatio() != 100 {
		t.Errorf("all-duplicate ratio = %v, want 100", r.DedupRatio())
	}
}

func TestGearChunkerAgent(t *testing.T) {
	tb := newTestbed(t, 3)
	idx := tb.ringIndex(t, 0)
	a, err := New(Config{
		Name:    "gear-agent",
		Mode:    ModeRing,
		Index:   idx,
		Cloud:   tb.cloudClient(t),
		Chunker: chunk.NewDefaultGearChunker(),
	})
	if err != nil {
		t.Fatal(err)
	}
	data := duplicatedData(23, 128*1024)
	ctx := context.Background()
	rep, err := a.ProcessBytes(ctx, "gear-file", data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuplicateChunks == 0 {
		t.Error("gear agent found no duplicates in self-repeating stream")
	}
	cl := tb.cloudClient(t)
	got, err := cl.Restore(ctx, "gear-file")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("gear-chunked restore differs")
	}
}
