// Package sim builds and evaluates large-scale SNOD2 scenarios — the
// paper's Sec. V-C simulations with up to 500 edge nodes and inter-node
// latencies drawn uniformly from [0, 100] ms, where running the real
// testbed would be impractical. Costs are evaluated analytically with the
// chunk-pool model; the partitioning algorithms are the real ones.
package sim

import (
	"fmt"
	"math"

	"efdedup/internal/model"
	"efdedup/internal/partition"
)

// ScenarioConfig parameterizes a synthetic deployment.
type ScenarioConfig struct {
	// Nodes is the number of edge nodes.
	Nodes int
	// ContentGroups is the number of correlated source populations
	// (dataset-2-like: cameras sharing scenes).
	ContentGroups int
	// PoolSize is the per-group chunk pool size s_k.
	PoolSize float64
	// GroupProb is the probability mass a source puts on its own
	// group's pool; the remainder (minus UniqueProb) is spread over the
	// other pools.
	GroupProb float64
	// UniqueProb is the never-repeating chunk mass per source.
	UniqueProb float64
	// RateMin and RateMax bound per-source chunk rates (chunks/s).
	RateMin, RateMax float64
	// MaxLatency: inter-node lookup costs ν are drawn from [0,
	// MaxLatency]. The unit is milliseconds per lookup, matching the
	// paper's 0-100 ms draw: with ν in ms, the paper's α values
	// (0.0001-0.1) put the network and storage terms on comparable
	// scales, which is what makes the Fig. 7 trade-off non-trivial.
	MaxLatency float64
	// GeoSigma, when positive, switches latencies from i.i.d. uniform to
	// a geographic model: nodes get 2-D positions, each content group
	// clusters around a random center with dispersion GeoSigma, and
	// ν_ij is the Euclidean distance (capped at MaxLatency). This
	// reflects the paper's motivation that correlated IoT sources are
	// geographically correlated; group members are near each other but
	// groups still straddle edge clouds, producing the tension of Fig. 1.
	GeoSigma float64
	// GroupSpread is extra probability mass each source spreads evenly
	// over the other groups' pools (cross-group similarity). It gives
	// storage-only partitioning a gradient toward ever-larger rings.
	GroupSpread float64
	// T, Gamma and Alpha are the SNOD2 window, replication factor and
	// trade-off.
	T, Gamma, Alpha float64
	// Seed makes the scenario deterministic.
	Seed int64
}

// DefaultScenario mirrors the Sec. V-C setup for a given node count and α.
// Content groups are fine-grained (one per ~5 nodes, like the paper's
// dataset-2 cameras sharing a scene) so that D2-rings can align with
// content; each group's pool saturates within its group, so splitting a
// group across rings re-stores its pool per ring — the storage structure
// a good partition must respect, orthogonal to the uniform random
// latencies a good partition must also exploit.
func DefaultScenario(nodes int, alpha float64, seed int64) ScenarioConfig {
	groups := nodes / 5
	if groups < 5 {
		groups = 5
	}
	return ScenarioConfig{
		Nodes:         nodes,
		ContentGroups: groups,
		PoolSize:      8000,
		GroupProb:     0.96,
		UniqueProb:    0.02,
		GroupSpread:   0.02,
		GeoSigma:      12,
		RateMin:       50,
		RateMax:       150,
		MaxLatency:    100,
		T:             600,
		Gamma:         2,
		Alpha:         alpha,
		Seed:          seed,
	}
}

// splitmix64 is the same deterministic generator the workload package
// uses.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Build materializes the scenario as a SNOD2 system.
func Build(cfg ScenarioConfig) (*model.System, error) {
	if cfg.Nodes <= 0 || cfg.ContentGroups <= 0 {
		return nil, fmt.Errorf("sim: nodes %d and groups %d must be positive", cfg.Nodes, cfg.ContentGroups)
	}
	if cfg.GroupProb+cfg.UniqueProb+cfg.GroupSpread > 1 {
		return nil, fmt.Errorf("sim: group %v + unique %v + spread %v probability exceeds 1",
			cfg.GroupProb, cfg.UniqueProb, cfg.GroupSpread)
	}
	state := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0x1234567
	rand01 := func() float64 { return float64(splitmix64(&state)>>11) / float64(1<<53) }

	pools := make([]float64, cfg.ContentGroups)
	for k := range pools {
		pools[k] = cfg.PoolSize
	}
	// Group centers for the geographic latency model.
	centers := make([][2]float64, cfg.ContentGroups)
	for g := range centers {
		centers[g] = [2]float64{rand01() * cfg.MaxLatency, rand01() * cfg.MaxLatency}
	}
	gaussian := func() float64 {
		// Box-Muller from two uniform draws.
		u1 := rand01()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		u2 := rand01()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
	srcs := make([]model.Source, cfg.Nodes)
	pos := make([][2]float64, cfg.Nodes)
	for i := range srcs {
		group := int(splitmix64(&state) % uint64(cfg.ContentGroups))
		probs := make([]float64, cfg.ContentGroups)
		for k := range probs {
			if k == group {
				probs[k] = cfg.GroupProb
			} else if cfg.ContentGroups > 1 {
				probs[k] = cfg.GroupSpread / float64(cfg.ContentGroups-1)
			}
		}
		rate := cfg.RateMin + rand01()*(cfg.RateMax-cfg.RateMin)
		srcs[i] = model.Source{ID: i, Rate: rate, Probs: probs}
		if cfg.GeoSigma > 0 {
			pos[i] = [2]float64{
				centers[group][0] + gaussian()*cfg.GeoSigma,
				centers[group][1] + gaussian()*cfg.GeoSigma,
			}
		}
	}
	cost := make([][]float64, cfg.Nodes)
	for i := range cost {
		cost[i] = make([]float64, cfg.Nodes)
	}
	for i := 0; i < cfg.Nodes; i++ {
		for j := i + 1; j < cfg.Nodes; j++ {
			var l float64
			if cfg.GeoSigma > 0 {
				dx := pos[i][0] - pos[j][0]
				dy := pos[i][1] - pos[j][1]
				l = math.Sqrt(dx*dx + dy*dy)
				if l > cfg.MaxLatency {
					l = cfg.MaxLatency
				}
			} else {
				l = rand01() * cfg.MaxLatency
			}
			cost[i][j], cost[j][i] = l, l
		}
	}
	sys := &model.System{
		PoolSizes: pools,
		Sources:   srcs,
		T:         cfg.T,
		Gamma:     cfg.Gamma,
		Alpha:     cfg.Alpha,
		NetCost:   cost,
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("sim: built invalid system: %w", err)
	}
	return sys, nil
}

// AlgoCost is one algorithm's result on a scenario.
type AlgoCost struct {
	Algorithm string
	Rings     int
	Cost      model.PartitionCost
}

// Compare runs every algorithm on the system with m rings and returns
// their SNOD2 costs.
func Compare(sys *model.System, algos []partition.Algorithm, m int) ([]AlgoCost, error) {
	out := make([]AlgoCost, 0, len(algos))
	for _, algo := range algos {
		rings, cost, err := partition.Evaluate(algo, sys, m)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", algo.Name(), err)
		}
		out = append(out, AlgoCost{Algorithm: algo.Name(), Rings: len(rings), Cost: cost})
	}
	return out, nil
}
