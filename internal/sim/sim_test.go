package sim

import (
	"testing"

	"efdedup/internal/partition"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(ScenarioConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	bad := DefaultScenario(10, 0.001, 1)
	bad.GroupProb = 0.9
	bad.UniqueProb = 0.3
	if _, err := Build(bad); err == nil {
		t.Error("probability mass > 1 accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(DefaultScenario(20, 0.001, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(DefaultScenario(20, 0.001, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sources {
		if a.Sources[i].Rate != b.Sources[i].Rate {
			t.Fatal("same seed produced different rates")
		}
	}
	if a.NetCost[3][7] != b.NetCost[3][7] {
		t.Fatal("same seed produced different latencies")
	}
	c, err := Build(DefaultScenario(20, 0.001, 10))
	if err != nil {
		t.Fatal(err)
	}
	if a.NetCost[3][7] == c.NetCost[3][7] {
		t.Fatal("different seeds produced identical latencies")
	}
}

func TestBuildScenarioShape(t *testing.T) {
	cfg := DefaultScenario(50, 0.001, 3)
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Sources) != 50 {
		t.Fatalf("%d sources, want 50", len(sys.Sources))
	}
	for i, src := range sys.Sources {
		if src.Rate < cfg.RateMin || src.Rate > cfg.RateMax {
			t.Errorf("source %d rate %v outside [%v,%v]", i, src.Rate, cfg.RateMin, cfg.RateMax)
		}
	}
	for i := range sys.NetCost {
		for j := range sys.NetCost[i] {
			if sys.NetCost[i][j] < 0 || sys.NetCost[i][j] > cfg.MaxLatency {
				t.Fatalf("latency [%d][%d]=%v outside [0,%v]", i, j, sys.NetCost[i][j], cfg.MaxLatency)
			}
			if sys.NetCost[i][j] != sys.NetCost[j][i] {
				t.Fatal("latency matrix not symmetric")
			}
		}
	}
}

func TestCompareEvaluatesAllAlgorithms(t *testing.T) {
	sys, err := Build(DefaultScenario(30, 0.001, 5))
	if err != nil {
		t.Fatal(err)
	}
	algos := []partition.Algorithm{
		partition.SmartGreedy{},
		partition.SmartGreedy{Obj: partition.NetworkOnlyObjective},
		partition.SmartGreedy{Obj: partition.DedupOnlyObjective},
	}
	results, err := Compare(sys, algos, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Cost.Aggregate <= 0 {
			t.Errorf("%s: non-positive aggregate cost", r.Algorithm)
		}
		if r.Rings < 1 || r.Rings > 5 {
			t.Errorf("%s: %d rings", r.Algorithm, r.Rings)
		}
	}
}

// TestSimShapeSmartWins is the Fig. 7(a) shape at a reduced scale: SMART
// (portfolio) has lower aggregate cost than both baselines.
func TestSimShapeSmartWins(t *testing.T) {
	sys, err := Build(DefaultScenario(60, 0.001, 11))
	if err != nil {
		t.Fatal(err)
	}
	results, err := Compare(sys, []partition.Algorithm{
		partition.Portfolio{},
		partition.Refined{Base: partition.SmartGreedy{Obj: partition.NetworkOnlyObjective}, Obj: partition.NetworkOnlyObjective},
		partition.Refined{Base: partition.SmartGreedy{Obj: partition.DedupOnlyObjective}, Obj: partition.DedupOnlyObjective},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	smart := results[0].Cost.Aggregate
	for _, r := range results[1:] {
		if smart > r.Cost.Aggregate*1.01 {
			t.Errorf("SMART %v not below %s %v", smart, r.Algorithm, r.Cost.Aggregate)
		}
	}
}
