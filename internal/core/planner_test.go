package core

import (
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/model"
	"efdedup/internal/partition"
	"efdedup/internal/workload"
)

// planSamples builds samples for 4 nodes from a known pool system: nodes
// {0,1} share one distribution and {2,3} another.
func planSamples(t *testing.T, chunkSize int) (map[int][][]byte, *model.System) {
	t.Helper()
	sys := &model.System{
		PoolSizes: []float64{400, 400},
		Sources: []model.Source{
			{ID: 0, Rate: 1, Probs: []float64{0.85, 0.05}},
			{ID: 1, Rate: 1, Probs: []float64{0.85, 0.05}},
			{ID: 2, Rate: 1, Probs: []float64{0.05, 0.85}},
			{ID: 3, Rate: 1, Probs: []float64{0.05, 0.85}},
		},
		T:     1,
		Gamma: 1,
	}
	d, err := workload.NewPoolDataset(sys, chunkSize, 300, 17)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[int][][]byte)
	for s := 0; s < 4; s++ {
		samples[s] = [][]byte{d.File(s, 0), d.File(s, 1)}
	}
	return samples, sys
}

func uniformCost(n int, cross float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = cross
			}
		}
	}
	return out
}

func TestMakePlanValidation(t *testing.T) {
	if _, err := MakePlan(PlanInput{Rings: 2}); err == nil {
		t.Error("no samples accepted")
	}
	samples, _ := planSamples(t, 512)
	if _, err := MakePlan(PlanInput{Samples: samples, Rings: 0}); err == nil {
		t.Error("zero rings accepted")
	}
	if _, err := MakePlan(PlanInput{
		Samples: samples, Rings: 2,
		Rates: []float64{1}, // wrong length
		T:     60, Gamma: 2, Alpha: 0.1,
		NetCost: uniformCost(4, 1),
	}); err == nil {
		t.Error("rate length mismatch accepted")
	}
}

func TestMakePlanEndToEnd(t *testing.T) {
	const chunkSize = 512
	samples, _ := planSamples(t, chunkSize)
	chunker, err := chunk.NewFixedChunker(chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	// Network geography agrees with the content clusters: {0,1} and
	// {2,3} are each co-located, cross-pair links are expensive. A
	// moderate α makes the two-ring content/site split optimal (one big
	// ring would pay the cross links, singletons would forgo the
	// intra-pair dedup).
	netCost := uniformCost(4, 0.2)
	netCost[0][1], netCost[1][0] = 0.001, 0.001
	netCost[2][3], netCost[3][2] = 0.001, 0.001
	plan, err := MakePlan(PlanInput{
		Samples: samples,
		Chunker: chunker,
		Rates:   []float64{10, 10, 10, 10},
		NetCost: netCost,
		T:       60, Gamma: 1, Alpha: 2,
		Rings: 2,
		Pools: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.System.Validate(); err != nil {
		t.Fatalf("plan system invalid: %v", err)
	}
	if plan.Cost.Aggregate <= 0 {
		t.Error("non-positive plan cost")
	}
	ringOf := map[int]int{}
	for r, ring := range plan.Rings {
		for _, id := range ring {
			ringOf[id] = r
		}
	}
	if len(ringOf) != 4 {
		t.Fatalf("plan covers %d nodes, want 4: %v", len(ringOf), plan.Rings)
	}
	if ringOf[0] != ringOf[1] || ringOf[2] != ringOf[3] || ringOf[0] == ringOf[2] {
		t.Errorf("plan %v did not recover content clusters {0,1},{2,3}", plan.Rings)
	}
	// Estimation quality must carry the paper's < 4% figure on
	// model-generated data.
	if e := plan.Estimate.MeanRelativeError(plan.GroundTruth); e > 0.05 {
		t.Errorf("plan estimation error %.2f%%, want < 5%%", e*100)
	}
}

func TestMakePlanWarmStart(t *testing.T) {
	const chunkSize = 512
	samples, _ := planSamples(t, chunkSize)
	chunker, err := chunk.NewFixedChunker(chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	in := PlanInput{
		Samples: samples,
		Chunker: chunker,
		Rates:   []float64{10, 10, 10, 10},
		NetCost: uniformCost(4, 0.005),
		T:       60, Gamma: 2, Alpha: 0.001,
		Rings:     2,
		Pools:     3,
		Algorithm: partition.SmartGreedy{},
	}
	first, err := MakePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	in.Warm = first.Estimate
	second, err := MakePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if second.Estimate.Iterations > first.Estimate.Iterations {
		t.Errorf("warm-started plan took %d sweeps, cold %d",
			second.Estimate.Iterations, first.Estimate.Iterations)
	}
}
