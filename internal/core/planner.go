// Package core is the EF-dedup control plane: it chains the paper's
// pipeline end to end — sample the sources, estimate chunk-pool
// characteristic vectors (Algorithm 1), assemble the SNOD2 instance, and
// partition the edge nodes into D2-rings (Algorithm 2 / SMART) — producing
// a deployment Plan that the cluster harness (or the standalone daemons)
// can apply.
package core

import (
	"errors"
	"fmt"

	"efdedup/internal/chunk"
	"efdedup/internal/estimate"
	"efdedup/internal/model"
	"efdedup/internal/partition"
)

// PlanInput gathers everything the planner needs.
type PlanInput struct {
	// Samples maps each edge node ID to sampled file contents from its
	// data flow. Node IDs must be 0..len(NetCost)-1.
	Samples map[int][][]byte
	// Chunker must match what the Dedup Agents deploy; defaults to an
	// 8 KiB fixed chunker.
	Chunker chunk.Chunker
	// Rates are per-node chunk rates (chunks/s), indexed by the sorted
	// node IDs of Samples.
	Rates []float64
	// NetCost is the pairwise lookup cost matrix ν_ij.
	NetCost [][]float64
	// T is the deduplication window (s); Gamma the index replication
	// factor; Alpha the network/storage trade-off.
	T, Gamma, Alpha float64
	// Rings is the maximum number of D2-rings M.
	Rings int
	// Pools is the model order K for estimation; defaults to 3 (the
	// paper's validated choice).
	Pools int
	// Algorithm defaults to the SMART portfolio solver.
	Algorithm partition.Algorithm
	// Warm optionally seeds estimation with a previous plan's fit (the
	// paper's time-varying warm start).
	Warm *estimate.Estimate
	// FitConfig overrides estimation knobs other than K and Warm.
	FitConfig estimate.Config
}

// Plan is a complete EF-dedup deployment decision.
type Plan struct {
	// Estimate is the fitted chunk-pool model.
	Estimate *estimate.Estimate
	// GroundTruth holds the measured sample dedup ratios the fit used.
	GroundTruth *estimate.GroundTruth
	// System is the assembled SNOD2 instance.
	System *model.System
	// Rings is the chosen partition: each entry lists node IDs (not
	// source indices) of one D2-ring.
	Rings [][]int
	// Cost is the analytic SNOD2 cost of the partition.
	Cost model.PartitionCost
}

// MakePlan runs the full pipeline.
func MakePlan(in PlanInput) (*Plan, error) {
	if len(in.Samples) == 0 {
		return nil, errors.New("core: no samples")
	}
	if in.Rings <= 0 {
		return nil, fmt.Errorf("core: ring count %d must be positive", in.Rings)
	}
	chunker := in.Chunker
	if chunker == nil {
		fc, err := chunk.NewFixedChunker(chunk.DefaultFixedSize)
		if err != nil {
			return nil, err
		}
		chunker = fc
	}
	pools := in.Pools
	if pools <= 0 {
		pools = 3
	}
	algo := in.Algorithm
	if algo == nil {
		algo = partition.Portfolio{}
	}

	gt, err := estimate.Measure(in.Samples, chunker)
	if err != nil {
		return nil, fmt.Errorf("core: measure samples: %w", err)
	}
	fitCfg := in.FitConfig
	fitCfg.K = pools
	fitCfg.Warm = in.Warm
	est, err := estimate.Fit(gt, fitCfg)
	if err != nil {
		return nil, fmt.Errorf("core: fit model: %w", err)
	}
	sys, err := est.System(gt, in.Rates, in.T, in.Gamma, in.Alpha, in.NetCost)
	if err != nil {
		return nil, fmt.Errorf("core: assemble system: %w", err)
	}
	ringIdx, cost, err := partition.Evaluate(algo, sys, in.Rings)
	if err != nil {
		return nil, fmt.Errorf("core: partition: %w", err)
	}
	// Translate source indices back to node IDs.
	rings := make([][]int, len(ringIdx))
	for r, ring := range ringIdx {
		rings[r] = make([]int, len(ring))
		for i, idx := range ring {
			rings[r][i] = gt.Sources[idx]
		}
	}
	return &Plan{
		Estimate:    est,
		GroundTruth: gt,
		System:      sys,
		Rings:       rings,
		Cost:        cost,
	}, nil
}
