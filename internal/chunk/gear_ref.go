package chunk

import (
	"fmt"
	"io"
)

// splitRawReference is the pre-acceleration SplitRaw scanner, kept
// verbatim as the differential-testing oracle: one table lookup, one
// shift-add and two compares per byte, every byte of the sub-minimum
// region hashed. FuzzGearVectorizedEquivalence and the chunk unit tests
// require SplitRaw and SplitRawBytes to reproduce its boundaries
// bit-identically for arbitrary input and geometry.
func (g *GearChunker) splitRawReference(r io.Reader, emit func(Raw) error) error {
	var (
		offset int64
		hash   uint64
		cur    = getBuf(g.max)
		block  = make([]byte, gearReadBlock)
	)
	flush := func() error {
		n := len(cur)
		err := emit(Raw{Offset: offset, Data: cur})
		offset += int64(n)
		cur = getBuf(g.max)
		hash = 0
		return err
	}
	table := &g.table
	mask := g.mask
	for {
		n, rdErr := r.Read(block)
		seg := block[:n]
		start := 0
		for start < len(seg) {
			minI := start + g.min - len(cur) - 1
			maxI := start + g.max - len(cur) - 1
			i := start
			if stop := min(minI, len(seg)); i < stop {
				for ; i < stop; i++ {
					hash = hash<<1 + table[seg[i]]
				}
			}
			boundary := -1
			stop := min(maxI, len(seg)-1)
			for ; i <= stop; i++ {
				hash = hash<<1 + table[seg[i]]
				if hash&mask == 0 {
					boundary = i
					break
				}
			}
			if boundary < 0 {
				if stop != maxI {
					break // segment exhausted mid-chunk
				}
				boundary = maxI // forced max-size boundary
			}
			cur = append(cur, seg[start:boundary+1]...)
			start = boundary + 1
			if err := flush(); err != nil {
				putBuf(cur)
				return err
			}
		}
		cur = append(cur, seg[start:]...)
		switch rdErr {
		case nil:
		case io.EOF:
			if len(cur) > 0 {
				if err := flush(); err != nil {
					putBuf(cur)
					return err
				}
			}
			putBuf(cur)
			return nil
		default:
			putBuf(cur)
			return fmt.Errorf("chunk: read input: %w", rdErr)
		}
	}
}
