package chunk

import (
	"bytes"
	"io"
	"testing"
)

// seedCorpus covers the boundary geometry of both chunkers: empty input,
// sub-minimum input, inputs straddling the min/max cut points, long
// repeated runs (worst case for a rolling hash: the gear hash never
// changes, so only the max-size backstop fires) and shifted content.
func seedCorpus(f *testing.F, min, max int) {
	f.Add([]byte{})
	f.Add([]byte("a"))
	f.Add([]byte("hello, chunker"))
	f.Add(bytes.Repeat([]byte{0x00}, max+1))
	f.Add(bytes.Repeat([]byte{0xFF}, 3*max))
	f.Add(bytes.Repeat([]byte("abc"), max))
	f.Add(patterned(min - 1))
	f.Add(patterned(min))
	f.Add(patterned(min + 1))
	f.Add(patterned(max - 1))
	f.Add(patterned(max))
	f.Add(patterned(max + 1))
	f.Add(append([]byte("shift"), patterned(2*max)...))
}

// patterned returns n bytes of a position-dependent pattern, so equal-size
// seeds are not equal-content seeds.
func patterned(n int) []byte {
	if n < 0 {
		n = 0
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*131 + i>>8)
	}
	return out
}

// checkChunks verifies the chunker contract on one (input, chunks) pair:
// every chunk is within [min, max] except a possibly-short final chunk,
// offsets are contiguous from zero, IDs match content, and Reassemble
// reproduces the input byte for byte.
func checkChunks(t *testing.T, input []byte, chunks []Chunk, min, max int) {
	t.Helper()
	for i, c := range chunks {
		if len(c.Data) == 0 {
			t.Fatalf("chunk %d is empty", i)
		}
		if len(c.Data) > max {
			t.Fatalf("chunk %d has %d bytes, above max %d", i, len(c.Data), max)
		}
		if len(c.Data) < min && i != len(chunks)-1 {
			t.Fatalf("non-final chunk %d has %d bytes, below min %d", i, len(c.Data), min)
		}
		if c.ID != Sum(c.Data) {
			t.Fatalf("chunk %d ID does not match its content", i)
		}
	}
	got, err := Reassemble(chunks)
	if err != nil {
		t.Fatalf("reassemble: %v", err)
	}
	if !bytes.Equal(got, input) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(input))
	}
}

// FuzzGearRoundTrip checks the CDC chunker's size and round-trip
// invariants with a deliberately small geometry (64/256/1024) so the
// fuzzer crosses min- and max-size boundaries with small inputs.
func FuzzGearRoundTrip(f *testing.F) {
	const (
		min    = 64
		target = 256
		max    = 1024
	)
	g, err := NewGearChunker(min, target, max)
	if err != nil {
		f.Fatal(err)
	}
	seedCorpus(f, min, max)
	f.Fuzz(func(t *testing.T, data []byte) {
		chunks, err := SplitBytes(g, data)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		checkChunks(t, data, chunks, min, max)
		// Content-defined boundaries must be deterministic: the same
		// bytes always cut at the same offsets.
		again, err := SplitBytes(g, data)
		if err != nil {
			t.Fatalf("re-split: %v", err)
		}
		if len(again) != len(chunks) {
			t.Fatalf("re-split produced %d chunks, first split %d", len(again), len(chunks))
		}
		for i := range chunks {
			if again[i].ID != chunks[i].ID || again[i].Offset != chunks[i].Offset {
				t.Fatalf("re-split chunk %d differs from first split", i)
			}
		}
	})
}

// chopReader serves at most chop bytes per Read, forcing the streaming
// scanners through arbitrary segment breaks.
type chopReader struct {
	data []byte
	chop int
}

func (c *chopReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := min(len(p), c.chop, len(c.data))
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// span is one emitted chunk's identity for boundary comparison.
type span struct {
	off int64
	n   int
}

// rawSpans runs one raw scanner and collects its boundary sequence.
func rawSpans(t *testing.T, label string, split func(emit func(Raw) error) error) []span {
	t.Helper()
	var out []span
	if err := split(func(r Raw) error {
		out = append(out, span{r.Offset, len(r.Data)})
		r.Release()
		return nil
	}); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return out
}

// FuzzGearVectorizedEquivalence is the differential oracle for the
// accelerated scanners: SplitRaw (skip-ahead + word-at-a-time) under
// both unchopped and arbitrarily chopped reads, and the zero-copy
// SplitRawBytes, must all reproduce splitRawReference's boundaries
// bit-identically. Geometries cover the fuzz-friendly 64/256/1024, a
// minimum below the 64-byte hash window (skip-ahead can never fire),
// non-power-of-two min/max, and window-straddling cut points.
func FuzzGearVectorizedEquivalence(f *testing.F) {
	geoms := [...][3]int{
		{64, 256, 1024},
		{16, 64, 256},   // min < gearWindow: pure roll, no skip
		{100, 256, 700}, // non-power-of-two min/max
		{512, 2048, 4096},
	}
	for _, d := range [][]byte{
		{},
		[]byte("a"),
		bytes.Repeat([]byte{0x00}, 3*1024),
		bytes.Repeat([]byte("abc"), 1024),
		patterned(63),
		patterned(64),
		patterned(65),
		patterned(1023),
		patterned(1024),
		patterned(1025),
		patterned(5000),
	} {
		for g := range geoms {
			f.Add(d, uint16(1), uint8(g))
			f.Add(d, uint16(63), uint8(g))
			f.Add(d, uint16(4096), uint8(g))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, rawChop uint16, geomSel uint8) {
		geom := geoms[int(geomSel)%len(geoms)]
		g, err := NewGearChunker(geom[0], geom[1], geom[2])
		if err != nil {
			t.Fatal(err)
		}
		chop := int(rawChop%4096) + 1
		want := rawSpans(t, "reference", func(emit func(Raw) error) error {
			return g.splitRawReference(bytes.NewReader(data), emit)
		})
		for _, c := range []struct {
			label string
			spans []span
		}{
			{"SplitRaw", rawSpans(t, "SplitRaw", func(emit func(Raw) error) error {
				return g.SplitRaw(bytes.NewReader(data), emit)
			})},
			{"SplitRaw/chopped", rawSpans(t, "SplitRaw/chopped", func(emit func(Raw) error) error {
				return g.SplitRaw(&chopReader{data: data, chop: chop}, emit)
			})},
			{"SplitRawBytes", rawSpans(t, "SplitRawBytes", func(emit func(Raw) error) error {
				return g.SplitRawBytes(data, emit)
			})},
		} {
			if len(c.spans) != len(want) {
				t.Fatalf("%s: %d chunks, reference %d (chop=%d geom=%v)", c.label, len(c.spans), len(want), chop, geom)
			}
			for i := range want {
				if c.spans[i] != want[i] {
					t.Fatalf("%s: chunk %d = %+v, reference %+v (chop=%d geom=%v)", c.label, i, c.spans[i], want[i], chop, geom)
				}
			}
		}
	})
}

// FuzzFixedRoundTrip checks the fixed chunker: every chunk is exactly the
// configured size except a possibly-short last one, and reassembly
// reproduces the input. The size itself is fuzzed alongside the data.
func FuzzFixedRoundTrip(f *testing.F) {
	f.Add(uint16(1), []byte{})
	f.Add(uint16(1), []byte("abc"))
	f.Add(uint16(7), patterned(50))
	f.Add(uint16(64), patterned(64))
	f.Add(uint16(64), patterned(65))
	f.Add(uint16(4096), patterned(3*4096+17))
	f.Fuzz(func(t *testing.T, rawSize uint16, data []byte) {
		size := int(rawSize%4096) + 1
		fc, err := NewFixedChunker(size)
		if err != nil {
			t.Fatalf("new fixed chunker: %v", err)
		}
		chunks, err := SplitBytes(fc, data)
		if err != nil {
			t.Fatalf("split: %v", err)
		}
		for i, c := range chunks {
			if i != len(chunks)-1 && len(c.Data) != size {
				t.Fatalf("non-final chunk %d has %d bytes, want exactly %d", i, len(c.Data), size)
			}
		}
		checkChunks(t, data, chunks, size, size)
	})
}
