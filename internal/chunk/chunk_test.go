package chunk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	a := Sum([]byte("hello"))
	b := Sum([]byte("hello"))
	c := Sum([]byte("hellp"))
	if a != b {
		t.Error("identical content produced different IDs")
	}
	if a == c {
		t.Error("different content produced identical IDs")
	}
}

func TestIDStringRoundTrip(t *testing.T) {
	id := Sum([]byte("round trip"))
	parsed, err := ParseID(id.String())
	if err != nil {
		t.Fatalf("ParseID: %v", err)
	}
	if parsed != id {
		t.Fatalf("ParseID(%q) = %v, want %v", id.String(), parsed, id)
	}
}

func TestParseIDErrors(t *testing.T) {
	if _, err := ParseID("abc"); err == nil {
		t.Error("short ID accepted")
	}
	bad := string(make([]byte, 2*IDSize))
	if _, err := ParseID(bad); err == nil {
		t.Error("non-hex ID accepted")
	}
}

func TestFixedChunkerSizes(t *testing.T) {
	f, err := NewFixedChunker(10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10 {
		t.Fatalf("Size = %d, want 10", f.Size())
	}
	data := make([]byte, 35)
	for i := range data {
		data[i] = byte(i)
	}
	chunks, err := SplitBytes(f, data)
	if err != nil {
		t.Fatal(err)
	}
	wantLens := []int{10, 10, 10, 5}
	if len(chunks) != len(wantLens) {
		t.Fatalf("got %d chunks, want %d", len(chunks), len(wantLens))
	}
	var off int64
	for i, c := range chunks {
		if c.Len() != wantLens[i] {
			t.Errorf("chunk %d len = %d, want %d", i, c.Len(), wantLens[i])
		}
		if c.Offset != off {
			t.Errorf("chunk %d offset = %d, want %d", i, c.Offset, off)
		}
		if Sum(c.Data) != c.ID {
			t.Errorf("chunk %d ID mismatch", i)
		}
		off += int64(c.Len())
	}
}

func TestFixedChunkerEmptyInput(t *testing.T) {
	f, _ := NewFixedChunker(8)
	chunks, err := SplitBytes(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Fatalf("got %d chunks for empty input, want 0", len(chunks))
	}
}

func TestFixedChunkerRejectsBadSize(t *testing.T) {
	for _, size := range []int{0, -1} {
		if _, err := NewFixedChunker(size); err == nil {
			t.Errorf("NewFixedChunker(%d) accepted", size)
		}
	}
}

func TestFixedChunkerEmitErrorStops(t *testing.T) {
	f, _ := NewFixedChunker(4)
	wantErr := errors.New("stop")
	calls := 0
	err := f.Split(bytes.NewReader(make([]byte, 100)), func(Chunk) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("Split error = %v, want %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error, want 1", calls)
	}
}

func TestGearChunkerGeometryValidation(t *testing.T) {
	tests := []struct{ min, target, max int }{
		{0, 8, 16},
		{8, 4, 16},   // target < min
		{4, 8, 7},    // max < target
		{4, 12, 100}, // target not a power of two
	}
	for _, tt := range tests {
		if _, err := NewGearChunker(tt.min, tt.target, tt.max); err == nil {
			t.Errorf("NewGearChunker(%d,%d,%d) accepted", tt.min, tt.target, tt.max)
		}
	}
}

func randomBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestGearChunkerBounds(t *testing.T) {
	g := NewDefaultGearChunker()
	rng := rand.New(rand.NewSource(1))
	data := randomBytes(rng, 1<<20)
	chunks, err := SplitBytes(g, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks for 1 MiB input", len(chunks))
	}
	for i, c := range chunks[:len(chunks)-1] {
		if c.Len() < DefaultGearMin || c.Len() > DefaultGearMax {
			t.Errorf("chunk %d size %d outside [%d,%d]", i, c.Len(), DefaultGearMin, DefaultGearMax)
		}
	}
	// Average chunk size should be within 3x of the target either way.
	avg := float64(len(data)) / float64(len(chunks))
	if avg < DefaultGearTarget/3 || avg > DefaultGearTarget*3 {
		t.Errorf("average chunk size %.0f too far from target %d", avg, DefaultGearTarget)
	}
}

// TestGearChunkerShiftResilience verifies the CDC property: after inserting
// bytes near the front, most chunk IDs are preserved, whereas fixed-size
// chunking loses almost all of them.
func TestGearChunkerShiftResilience(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randomBytes(rng, 1<<19)
	shifted := append(append([]byte{}, randomBytes(rng, 7)...), data...)

	idSet := func(cs []Chunk) map[ID]bool {
		m := make(map[ID]bool, len(cs))
		for _, c := range cs {
			m[c.ID] = true
		}
		return m
	}
	overlap := func(c Chunker) float64 {
		a, err := SplitBytes(c, data)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SplitBytes(c, shifted)
		if err != nil {
			t.Fatal(err)
		}
		as, shared := idSet(a), 0
		for _, cb := range b {
			if as[cb.ID] {
				shared++
			}
		}
		return float64(shared) / float64(len(a))
	}

	gear := overlap(NewDefaultGearChunker())
	fixed8k, _ := NewFixedChunker(8 * 1024)
	fixed := overlap(fixed8k)

	if gear < 0.9 {
		t.Errorf("gear chunker preserved only %.1f%% of chunks after shift", gear*100)
	}
	if fixed > 0.1 {
		t.Errorf("fixed chunker unexpectedly preserved %.1f%% after shift", fixed*100)
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randomBytes(rng, 200000)
	for name, c := range map[string]Chunker{
		"fixed": mustFixed(t, 4096),
		"gear":  NewDefaultGearChunker(),
	} {
		chunks, err := SplitBytes(c, data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Reassemble(chunks)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%s: reassembled stream differs from input", name)
		}
	}
}

func TestReassembleDetectsCorruption(t *testing.T) {
	f := mustFixed(t, 16)
	chunks, err := SplitBytes(f, []byte("some content that spans multiple chunks here"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt payload without updating the ID.
	chunks[1].Data[0] ^= 0xFF
	if _, err := Reassemble(chunks); err == nil {
		t.Error("corrupted chunk not detected")
	}
	chunks[1].Data[0] ^= 0xFF
	// Break offsets.
	chunks[1].Offset += 3
	if _, err := Reassemble(chunks); err == nil {
		t.Error("offset gap not detected")
	}
}

func mustFixed(t *testing.T, size int) *FixedChunker {
	t.Helper()
	f, err := NewFixedChunker(size)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestPropertyChunkersPreserveContent: for any input, splitting and
// reassembling is the identity, for both chunkers.
func TestPropertyChunkersPreserveContent(t *testing.T) {
	gear := NewDefaultGearChunker()
	fixed := mustFixed(t, 512)
	f := func(data []byte) bool {
		for _, c := range []Chunker{gear, fixed} {
			chunks, err := SplitBytes(c, data)
			if err != nil {
				return false
			}
			back, err := Reassemble(chunks)
			if err != nil {
				return false
			}
			if !bytes.Equal(back, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyFixedChunkCount: chunk count is ceil(len/size).
func TestPropertyFixedChunkCount(t *testing.T) {
	f := func(raw []byte, sizeSeed uint8) bool {
		size := int(sizeSeed)%100 + 1
		c, err := NewFixedChunker(size)
		if err != nil {
			return false
		}
		chunks, err := SplitBytes(c, raw)
		if err != nil {
			return false
		}
		want := (len(raw) + size - 1) / size
		return len(chunks) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGearDeterminism: the same input always yields the same chunk IDs.
func TestGearDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randomBytes(rng, 1<<18)
	a, err := SplitBytes(NewDefaultGearChunker(), data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SplitBytes(NewDefaultGearChunker(), data)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("chunk %d differs between runs", i)
		}
	}
}
