package chunk

import (
	"bufio"
	"fmt"
	"io"
)

// Default gear-chunker geometry: 2 KiB minimum, 8 KiB target, 64 KiB
// maximum chunk size.
const (
	DefaultGearMin    = 2 * 1024
	DefaultGearTarget = 8 * 1024
	DefaultGearMax    = 64 * 1024
)

// GearChunker is a content-defined chunker based on a gear rolling hash
// (as in FastCDC). A boundary is declared whenever the rolling hash has its
// top maskBits bits clear, yielding chunks of ~target bytes on average.
// Because boundaries depend only on a 64-byte window of content, inserting
// or deleting bytes disturbs only nearby chunk boundaries — the key
// property that lets variable-size chunking find more duplicates than
// fixed-size chunking on shifted data.
type GearChunker struct {
	min, target, max int
	mask             uint64
	table            [256]uint64
}

var _ Chunker = (*GearChunker)(nil)

// NewGearChunker returns a CDC chunker with the given minimum, average
// (power of two) and maximum chunk sizes.
func NewGearChunker(min, target, max int) (*GearChunker, error) {
	if min <= 0 || target < min || max < target {
		return nil, fmt.Errorf("chunk: invalid gear geometry min=%d target=%d max=%d", min, target, max)
	}
	if target&(target-1) != 0 {
		return nil, fmt.Errorf("chunk: gear target size %d must be a power of two", target)
	}
	g := &GearChunker{min: min, target: target, max: max}
	// Boundary when the top log2(target) bits are zero: probability
	// 1/target per byte → expected chunk length ≈ target.
	bits := 0
	for t := target; t > 1; t >>= 1 {
		bits++
	}
	g.mask = ^uint64(0) << (64 - bits)
	g.table = gearTable()
	return g, nil
}

// NewDefaultGearChunker returns a chunker with the default 2K/8K/64K
// geometry.
func NewDefaultGearChunker() *GearChunker {
	g, err := NewGearChunker(DefaultGearMin, DefaultGearTarget, DefaultGearMax)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return g
}

// gearTable derives 256 pseudo-random gear values from SplitMix64 so the
// chunker is fully deterministic across runs and platforms.
func gearTable() [256]uint64 {
	var t [256]uint64
	state := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// Split implements Chunker.
func (g *GearChunker) Split(r io.Reader, emit func(Chunk) error) error {
	br := bufio.NewReaderSize(r, 64*1024)
	var (
		offset int64
		buf    = make([]byte, 0, g.max)
		hash   uint64
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		data := make([]byte, len(buf))
		copy(data, buf)
		c := Chunk{ID: Sum(data), Offset: offset, Data: data}
		offset += int64(len(data))
		buf = buf[:0]
		hash = 0
		return emit(c)
	}
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			if fErr := flush(); fErr != nil {
				return fErr
			}
			return nil
		}
		if err != nil {
			return fmt.Errorf("chunk: read input: %w", err)
		}
		buf = append(buf, b)
		hash = (hash << 1) + g.table[b]
		if len(buf) >= g.min && hash&g.mask == 0 || len(buf) >= g.max {
			if fErr := flush(); fErr != nil {
				return fErr
			}
		}
	}
}
