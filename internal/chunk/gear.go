package chunk

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Default gear-chunker geometry: 2 KiB minimum, 8 KiB target, 64 KiB
// maximum chunk size.
const (
	DefaultGearMin    = 2 * 1024
	DefaultGearTarget = 8 * 1024
	DefaultGearMax    = 64 * 1024
)

// gearReadBlock is the size of the input block the scanner rolls over.
const gearReadBlock = 64 * 1024

// GearChunker is a content-defined chunker based on a gear rolling hash
// (as in FastCDC). A boundary is declared whenever the rolling hash has its
// top maskBits bits clear, yielding chunks of ~target bytes on average.
// Because boundaries depend only on a 64-byte window of content, inserting
// or deleting bytes disturbs only nearby chunk boundaries — the key
// property that lets variable-size chunking find more duplicates than
// fixed-size chunking on shifted data.
type GearChunker struct {
	min, target, max int
	mask             uint64
	table            [256]uint64
}

var (
	_ Chunker         = (*GearChunker)(nil)
	_ RawChunker      = (*GearChunker)(nil)
	_ RawBytesChunker = (*GearChunker)(nil)
)

// NewGearChunker returns a CDC chunker with the given minimum, average
// (power of two) and maximum chunk sizes.
func NewGearChunker(min, target, max int) (*GearChunker, error) {
	if min <= 0 || target < min || max < target {
		return nil, fmt.Errorf("chunk: invalid gear geometry min=%d target=%d max=%d", min, target, max)
	}
	if target&(target-1) != 0 {
		return nil, fmt.Errorf("chunk: gear target size %d must be a power of two", target)
	}
	g := &GearChunker{min: min, target: target, max: max}
	// Boundary when the top log2(target) bits are zero: probability
	// 1/target per byte → expected chunk length ≈ target.
	bits := 0
	for t := target; t > 1; t >>= 1 {
		bits++
	}
	g.mask = ^uint64(0) << (64 - bits)
	g.table = gearTable()
	return g, nil
}

// NewDefaultGearChunker returns a chunker with the default 2K/8K/64K
// geometry.
func NewDefaultGearChunker() *GearChunker {
	g, err := NewGearChunker(DefaultGearMin, DefaultGearTarget, DefaultGearMax)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return g
}

// gearTable derives 256 pseudo-random gear values from SplitMix64 so the
// chunker is fully deterministic across runs and platforms.
func gearTable() [256]uint64 {
	var t [256]uint64
	state := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// Split implements Chunker. Payloads are freshly allocated copies the
// caller owns (the documented Chunk contract); the dedup pipeline uses
// SplitRaw instead to skip both the copy and the inline hash.
func (g *GearChunker) Split(r io.Reader, emit func(Chunk) error) error {
	return g.SplitRaw(r, func(raw Raw) error {
		data := make([]byte, len(raw.Data))
		copy(data, raw.Data)
		raw.Release()
		return emit(Chunk{ID: Sum(data), Offset: raw.Offset, Data: data})
	})
}

// gearWindow is the effective rolling-hash window in bytes. Each step
// shifts the accumulator left by one bit, so a byte's contribution is
// fully shifted out of the uint64 after 64 more bytes: the hash at any
// position depends on exactly the 64 bytes ending there. Two scanner
// properties follow and the accelerated paths below exploit both:
//
//   - Skip-ahead (SeqCDC): no boundary test fires before the chunk
//     reaches the minimum size, and the hash at the first tested
//     position depends only on the 63 bytes preceding it. Everything
//     earlier in the sub-minimum region is copied, never rolled.
//   - Self-correction: rolling 64 bytes from ANY starting accumulator
//     reaches the same value as a full roll (the stale state is shifted
//     out), so a reset to zero at windowStart = firstTest-63 is exact.
const gearWindow = 64

// gearRoll advances the hash over seg[i:stop) with no boundary tests,
// eight bytes per iteration: one bounds-checked word load replaces
// eight bounds-checked byte loads, and the table indices are masked
// constants the compiler proves in range.
func gearRoll(table *[256]uint64, seg []byte, i, stop int, hash uint64) uint64 {
	for ; i+8 <= stop; i += 8 {
		w := binary.LittleEndian.Uint64(seg[i:])
		hash = hash<<1 + table[w&0xff]
		hash = hash<<1 + table[w>>8&0xff]
		hash = hash<<1 + table[w>>16&0xff]
		hash = hash<<1 + table[w>>24&0xff]
		hash = hash<<1 + table[w>>32&0xff]
		hash = hash<<1 + table[w>>40&0xff]
		hash = hash<<1 + table[w>>48&0xff]
		hash = hash<<1 + table[w>>56]
	}
	for ; i < stop; i++ {
		hash = hash<<1 + table[seg[i]]
	}
	return hash
}

// gearFind scans seg[i..stop] testing every position, eight bytes per
// word load with the hash update chain fully unrolled. It returns the
// first index whose hash has the mask bits clear (with the hash at that
// index), or -1 and the hash at stop. The per-position test is the same
// single-mask compare as the reference scanner, so boundaries are
// bit-identical; the unrolling only removes per-byte loop and load
// overhead. The eight not-taken branches per word predict perfectly on
// real data (a boundary is a 1-in-target event).
func gearFind(table *[256]uint64, mask uint64, seg []byte, i, stop int, hash uint64) (int, uint64) {
	for ; i+7 <= stop; i += 8 {
		w := binary.LittleEndian.Uint64(seg[i:])
		h := hash<<1 + table[w&0xff]
		if h&mask == 0 {
			return i, h
		}
		h = h<<1 + table[w>>8&0xff]
		if h&mask == 0 {
			return i + 1, h
		}
		h = h<<1 + table[w>>16&0xff]
		if h&mask == 0 {
			return i + 2, h
		}
		h = h<<1 + table[w>>24&0xff]
		if h&mask == 0 {
			return i + 3, h
		}
		h = h<<1 + table[w>>32&0xff]
		if h&mask == 0 {
			return i + 4, h
		}
		h = h<<1 + table[w>>40&0xff]
		if h&mask == 0 {
			return i + 5, h
		}
		h = h<<1 + table[w>>48&0xff]
		if h&mask == 0 {
			return i + 6, h
		}
		h = h<<1 + table[w>>56]
		if h&mask == 0 {
			return i + 7, h
		}
		hash = h
	}
	for ; i <= stop; i++ {
		hash = hash<<1 + table[seg[i]]
		if hash&mask == 0 {
			return i, hash
		}
	}
	return -1, hash
}

// SplitRaw implements RawChunker: it finds the same boundaries as Split
// but emits pooled, unhashed payloads. The scanner is the accelerated
// form of the reference loop (kept as splitRawReference for
// differential testing): the sub-minimum region is skipped rather than
// hashed — only its last gearWindow-1 bytes can influence a boundary
// decision — and both the roll and the boundary scan consume the
// segment eight bytes per word load (gearRoll/gearFind). Boundaries are
// bit-identical to the reference for any input and any read chopping;
// FuzzGearVectorizedEquivalence holds that bar.
func (g *GearChunker) SplitRaw(r io.Reader, emit func(Raw) error) error {
	var (
		offset int64
		hash   uint64
		cur    = getBuf(g.max)
		block  = make([]byte, gearReadBlock)
	)
	// flush emits cur as one chunk; ownership of the buffer moves to
	// emit, so a fresh arena buffer replaces it.
	flush := func() error {
		n := len(cur)
		err := emit(Raw{Offset: offset, Data: cur})
		offset += int64(n)
		cur = getBuf(g.max)
		hash = 0
		return err
	}
	table := &g.table
	mask := g.mask
	for {
		n, rdErr := r.Read(block)
		seg := block[:n]
		// start marks the beginning of the unconsumed tail of seg: bytes
		// scanned past it belong to the current chunk but have not been
		// copied into cur yet.
		start := 0
		for start < len(seg) {
			// Absolute indices at which the current chunk reaches the
			// minimum and maximum lengths: a boundary can only fire at
			// i ≥ minI, and is forced at i == maxI.
			minI := start + g.min - len(cur) - 1
			maxI := start + g.max - len(cur) - 1
			i := start
			// Skip-ahead: bytes before minI-(gearWindow-1) cannot affect
			// the hash at any tested position. If the window start lies
			// beyond this segment, the whole tail is copied unrolled; the
			// stale hash is harmless — the next segment either resets it
			// at its own window start or rolls ≥ gearWindow bytes before
			// the first test, shifting the stale state out (see
			// gearWindow).
			if skip := minI - (gearWindow - 1); i < skip {
				if skip >= len(seg) {
					break
				}
				i, hash = skip, 0
			}
			if rollStop := min(minI, len(seg)); i < rollStop {
				hash = gearRoll(table, seg, i, rollStop, hash)
				i = rollStop
			}
			stop := min(maxI, len(seg)-1)
			boundary, h := gearFind(table, mask, seg, i, stop, hash)
			hash = h
			if boundary < 0 {
				if stop != maxI {
					break // segment exhausted mid-chunk
				}
				boundary = maxI // forced max-size boundary
			}
			cur = append(cur, seg[start:boundary+1]...)
			start = boundary + 1
			if err := flush(); err != nil {
				putBuf(cur)
				return err
			}
		}
		cur = append(cur, seg[start:]...)
		switch rdErr {
		case nil:
		case io.EOF:
			if len(cur) > 0 {
				if err := flush(); err != nil {
					putBuf(cur)
					return err
				}
			}
			putBuf(cur)
			return nil
		default:
			putBuf(cur)
			return fmt.Errorf("chunk: read input: %w", rdErr)
		}
	}
}

// SplitRawBytes implements RawBytesChunker: the same boundaries as
// SplitRaw over an in-memory buffer, with zero copies — each emitted
// payload aliases data directly. With the whole input visible there are
// no segment breaks to carry hash state across, so every chunk scans as
// skip → roll(≤ gearWindow-1 bytes) → word-at-a-time boundary test.
//
// Aliased payloads must never enter the buffer arena: putBuf pools any
// slice whose capacity is an exact power-of-two class, and a pooled
// alias would let a later chunk scribble over the caller's bytes. Every
// emitted slice therefore gets its capacity pinched to a non-class
// value (there is always a spare byte to extend over, except for a
// final chunk of exact power-of-two length, which is copied into a real
// arena buffer — a ~0.01% case).
func (g *GearChunker) SplitRawBytes(data []byte, emit func(Raw) error) error {
	table := &g.table
	mask := g.mask
	start := 0
	for start < len(data) {
		minI := start + g.min - 1
		maxI := start + g.max - 1
		i := start
		if skip := minI - (gearWindow - 1); i < skip {
			i = skip
		}
		var hash uint64
		if rollStop := min(minI, len(data)); i < rollStop {
			hash = gearRoll(table, data, i, rollStop, hash)
			i = rollStop
		}
		stop := min(maxI, len(data)-1)
		boundary, _ := gearFind(table, mask, data, i, stop, hash)
		end := boundary + 1
		if boundary < 0 {
			if stop != maxI {
				end = len(data) // final short chunk
			} else {
				end = maxI + 1 // forced max-size boundary
			}
		}
		payload := data[start:end:end]
		if n := end - start; n&(n-1) == 0 && n >= 1<<minPoolClass {
			if end < len(data) {
				payload = data[start : end : end+1] // pinch cap off the class
			} else {
				buf := getBuf(n) // no spare byte: copy the tail chunk
				payload = append(buf, data[start:end]...)
			}
		}
		if err := emit(Raw{Offset: int64(start), Data: payload}); err != nil {
			return err
		}
		start = end
	}
	return nil
}
