package chunk

import (
	"fmt"
	"io"
)

// Default gear-chunker geometry: 2 KiB minimum, 8 KiB target, 64 KiB
// maximum chunk size.
const (
	DefaultGearMin    = 2 * 1024
	DefaultGearTarget = 8 * 1024
	DefaultGearMax    = 64 * 1024
)

// gearReadBlock is the size of the input block the scanner rolls over.
const gearReadBlock = 64 * 1024

// GearChunker is a content-defined chunker based on a gear rolling hash
// (as in FastCDC). A boundary is declared whenever the rolling hash has its
// top maskBits bits clear, yielding chunks of ~target bytes on average.
// Because boundaries depend only on a 64-byte window of content, inserting
// or deleting bytes disturbs only nearby chunk boundaries — the key
// property that lets variable-size chunking find more duplicates than
// fixed-size chunking on shifted data.
type GearChunker struct {
	min, target, max int
	mask             uint64
	table            [256]uint64
}

var (
	_ Chunker    = (*GearChunker)(nil)
	_ RawChunker = (*GearChunker)(nil)
)

// NewGearChunker returns a CDC chunker with the given minimum, average
// (power of two) and maximum chunk sizes.
func NewGearChunker(min, target, max int) (*GearChunker, error) {
	if min <= 0 || target < min || max < target {
		return nil, fmt.Errorf("chunk: invalid gear geometry min=%d target=%d max=%d", min, target, max)
	}
	if target&(target-1) != 0 {
		return nil, fmt.Errorf("chunk: gear target size %d must be a power of two", target)
	}
	g := &GearChunker{min: min, target: target, max: max}
	// Boundary when the top log2(target) bits are zero: probability
	// 1/target per byte → expected chunk length ≈ target.
	bits := 0
	for t := target; t > 1; t >>= 1 {
		bits++
	}
	g.mask = ^uint64(0) << (64 - bits)
	g.table = gearTable()
	return g, nil
}

// NewDefaultGearChunker returns a chunker with the default 2K/8K/64K
// geometry.
func NewDefaultGearChunker() *GearChunker {
	g, err := NewGearChunker(DefaultGearMin, DefaultGearTarget, DefaultGearMax)
	if err != nil {
		panic(err) // unreachable: constants are valid
	}
	return g
}

// gearTable derives 256 pseudo-random gear values from SplitMix64 so the
// chunker is fully deterministic across runs and platforms.
func gearTable() [256]uint64 {
	var t [256]uint64
	state := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}

// Split implements Chunker. Payloads are freshly allocated copies the
// caller owns (the documented Chunk contract); the dedup pipeline uses
// SplitRaw instead to skip both the copy and the inline hash.
func (g *GearChunker) Split(r io.Reader, emit func(Chunk) error) error {
	return g.SplitRaw(r, func(raw Raw) error {
		data := make([]byte, len(raw.Data))
		copy(data, raw.Data)
		raw.Release()
		return emit(Chunk{ID: Sum(data), Offset: raw.Offset, Data: data})
	})
}

// SplitRaw implements RawChunker: it finds the same boundaries as Split
// but emits pooled, unhashed payloads. The gear hash rolls over buffered
// input blocks in a tight index loop — one table lookup, one shift-add
// and two compares per byte, no per-byte reader or append calls — and
// each chunk's bytes are copied into its arena buffer once per block
// segment rather than once per byte.
func (g *GearChunker) SplitRaw(r io.Reader, emit func(Raw) error) error {
	var (
		offset int64
		hash   uint64
		cur    = getBuf(g.max)
		block  = make([]byte, gearReadBlock)
	)
	// flush emits cur as one chunk; ownership of the buffer moves to
	// emit, so a fresh arena buffer replaces it.
	flush := func() error {
		n := len(cur)
		err := emit(Raw{Offset: offset, Data: cur})
		offset += int64(n)
		cur = getBuf(g.max)
		hash = 0
		return err
	}
	table := &g.table
	mask := g.mask
	for {
		n, rdErr := r.Read(block)
		seg := block[:n]
		// start marks the beginning of the unconsumed tail of seg: bytes
		// scanned past it belong to the current chunk but have not been
		// copied into cur yet.
		start := 0
		for start < len(seg) {
			// Absolute indices at which the current chunk reaches the
			// minimum and maximum lengths: a boundary can only fire at
			// i ≥ minI, and is forced at i == maxI. Splitting the scan at
			// minI keeps the sub-minimum phase free of boundary tests —
			// the same boundaries as the single-loop form, faster.
			minI := start + g.min - len(cur) - 1
			maxI := start + g.max - len(cur) - 1
			i := start
			if stop := min(minI, len(seg)); i < stop {
				for ; i < stop; i++ {
					hash = hash<<1 + table[seg[i]]
				}
			}
			boundary := -1
			stop := min(maxI, len(seg)-1)
			for ; i <= stop; i++ {
				hash = hash<<1 + table[seg[i]]
				if hash&mask == 0 {
					boundary = i
					break
				}
			}
			if boundary < 0 {
				if stop != maxI {
					break // segment exhausted mid-chunk
				}
				boundary = maxI // forced max-size boundary
			}
			cur = append(cur, seg[start:boundary+1]...)
			start = boundary + 1
			if err := flush(); err != nil {
				putBuf(cur)
				return err
			}
		}
		cur = append(cur, seg[start:]...)
		switch rdErr {
		case nil:
		case io.EOF:
			if len(cur) > 0 {
				if err := flush(); err != nil {
					putBuf(cur)
					return err
				}
			}
			putBuf(cur)
			return nil
		default:
			putBuf(cur)
			return fmt.Errorf("chunk: read input: %w", rdErr)
		}
	}
}
