package chunk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// rawEquivalence asserts SplitRaw finds byte-identical chunks (offsets,
// lengths, content hashes) to Split on the same input.
func rawEquivalence(t *testing.T, c interface {
	Chunker
	RawChunker
}, data []byte) {
	t.Helper()
	want, err := SplitBytes(c, data)
	if err != nil {
		t.Fatal(err)
	}
	var got []Chunk
	err = c.SplitRaw(bytes.NewReader(data), func(r Raw) error {
		// Copy before Release: the payload is only valid until then.
		d := make([]byte, len(r.Data))
		copy(d, r.Data)
		r.Release()
		got = append(got, Chunk{ID: Sum(d), Offset: r.Offset, Data: d})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SplitRaw produced %d chunks, Split produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].ID != want[i].ID {
			t.Fatalf("chunk %d diverges: raw (off=%d id=%s) vs split (off=%d id=%s)",
				i, got[i].Offset, got[i].ID, want[i].Offset, want[i].ID)
		}
	}
	if re, err := Reassemble(got); err != nil || !bytes.Equal(re, data) {
		t.Fatalf("raw chunks do not reassemble to the input (err=%v)", err)
	}
}

func TestGearSplitRawMatchesSplit(t *testing.T) {
	g := NewDefaultGearChunker()
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{0, 1, 100, DefaultGearMin, DefaultGearMax,
		DefaultGearMax + 1, 300*1024 + 7} {
		data := make([]byte, size)
		rng.Read(data)
		rawEquivalence(t, g, data)
	}
	// Constant input maximizes max-size boundaries.
	rawEquivalence(t, g, bytes.Repeat([]byte{0xAB}, 200*1024))
}

func TestGearSplitRawSmallGeometry(t *testing.T) {
	g, err := NewGearChunker(64, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 37*1024+13)
	rng.Read(data)
	rawEquivalence(t, g, data)
}

func TestFixedSplitRawMatchesSplit(t *testing.T) {
	f, err := NewFixedChunker(4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 4095, 4096, 4097, 100 * 1024} {
		data := make([]byte, size)
		rng.Read(data)
		rawEquivalence(t, f, data)
	}
}

// TestGearSplitRawChoppyReader feeds the scanner tiny irregular reads so
// block refills land mid-chunk.
func TestGearSplitRawChoppyReader(t *testing.T) {
	g := NewDefaultGearChunker()
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 150*1024)
	rng.Read(data)

	want, err := SplitBytes(g, data)
	if err != nil {
		t.Fatal(err)
	}
	var got []Chunk
	err = g.SplitRaw(iotestChoppy{bytes.NewReader(data), rand.New(rand.NewSource(9))}, func(r Raw) error {
		d := append([]byte(nil), r.Data...)
		r.Release()
		got = append(got, Chunk{ID: Sum(d), Offset: r.Offset, Data: d})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("choppy reads changed chunking: %d vs %d chunks", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("chunk %d diverges under choppy reads", i)
		}
	}
}

// iotestChoppy yields 1..97 bytes per read.
type iotestChoppy struct {
	r   *bytes.Reader
	rng *rand.Rand
}

func (c iotestChoppy) Read(p []byte) (int, error) {
	n := 1 + c.rng.Intn(97)
	if n > len(p) {
		n = len(p)
	}
	return c.r.Read(p[:n])
}

// TestSplitRawEmitError checks early-abort paths surface the callback
// error and do not panic on buffer cleanup.
func TestSplitRawEmitError(t *testing.T) {
	g := NewDefaultGearChunker()
	data := make([]byte, 256*1024)
	rand.New(rand.NewSource(10)).Read(data)
	boom := errors.New("boom")
	calls := 0
	err := g.SplitRaw(bytes.NewReader(data), func(r Raw) error {
		r.Release()
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not surfaced: %v", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after abort, want 2", calls)
	}
}

// TestSplitRawReadError: a failing reader surfaces its error.
func TestSplitRawReadError(t *testing.T) {
	g := NewDefaultGearChunker()
	broken := errors.New("disk on fire")
	var emitted int
	err := g.SplitRaw(&failAfter{data: bytes.Repeat([]byte{1}, 200*1024), fail: broken}, func(r Raw) error {
		r.Release()
		emitted++
		return nil
	})
	if !errors.Is(err, broken) {
		t.Fatalf("read error not surfaced: %v", err)
	}
	if emitted == 0 {
		t.Fatal("no chunks emitted before the failure")
	}
}

type failAfter struct {
	data []byte
	fail error
}

func (f *failAfter) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.fail
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := getBuf(DefaultGearMax)
	if cap(b) < DefaultGearMax {
		t.Fatalf("getBuf(%d) capacity %d", DefaultGearMax, cap(b))
	}
	if len(b) != 0 {
		t.Fatalf("getBuf returned len %d, want 0", len(b))
	}
	putBuf(b)
	// Foreign and degenerate slices must be tolerated.
	putBuf(nil)
	putBuf(make([]byte, 3))
	Raw{Data: make([]byte, 10)}.Release()
	if c := poolClass(0); c != -1 {
		t.Fatalf("poolClass(0) = %d, want -1", c)
	}
	if c := poolClass(1 << 30); c != -1 {
		t.Fatalf("poolClass(1<<30) = %d, want -1 (beyond pooled range)", c)
	}
}

// TestSplitRawBytesZeroCopyAndPoolSafety pins the aliasing contract of
// the zero-copy path: payloads alias the input where possible, but no
// aliased payload may carry an arena-class capacity (power of two in
// the pooled range), or Release would file caller memory into the pool.
// All-zero input never fires a content boundary, so every chunk is a
// forced max-size cut — the worst case, since max is a pool class.
func TestSplitRawBytesZeroCopyAndPoolSafety(t *testing.T) {
	g, err := NewGearChunker(64, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*1024)
	var raws []Raw
	if err := g.SplitRawBytes(data, func(r Raw) error {
		raws = append(raws, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(raws) != 3 {
		t.Fatalf("got %d chunks, want 3 forced max-size cuts", len(raws))
	}
	for i, r := range raws {
		if len(r.Data) != 1024 {
			t.Fatalf("chunk %d has %d bytes, want 1024", i, len(r.Data))
		}
		// Writing through the payload reveals aliasing.
		r.Data[0] = 0xEE
		aliased := data[int(r.Offset)] == 0xEE
		data[int(r.Offset)] = 0
		if i < len(raws)-1 {
			if !aliased {
				t.Fatalf("chunk %d was copied, want zero-copy alias", i)
			}
			if c := cap(r.Data); c&(c-1) == 0 {
				t.Fatalf("aliased chunk %d has pool-class capacity %d", i, c)
			}
		} else {
			// Final chunk has no spare byte to pinch the cap over, so it
			// must be a real arena copy.
			if aliased {
				t.Fatal("final power-of-two chunk aliases the input but is pool-eligible")
			}
		}
	}
	for _, r := range raws {
		r.Release()
	}
	// After releasing everything, no arena buffer may alias the input:
	// drain the relevant class and write through every buffer.
	pristine := make([]byte, len(data))
	bufs := make([][]byte, 64)
	for i := range bufs {
		b := getBuf(1024)[:1024]
		for j := range b {
			b[j] = 0xAA
		}
		bufs[i] = b
	}
	if !bytes.Equal(data, pristine) {
		t.Fatal("arena handed out a buffer aliasing caller data")
	}
	for _, b := range bufs {
		putBuf(b)
	}
}

// TestSplitRawBytesMatchesSplit checks the zero-copy path against the
// hashing chunker on content-rich input (natural boundaries, short tail).
func TestSplitRawBytesMatchesSplit(t *testing.T) {
	g := NewDefaultGearChunker()
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 1, DefaultGearMin - 1, DefaultGearMax + 1, 300*1024 + 7} {
		data := make([]byte, size)
		rng.Read(data)
		want, err := SplitBytes(g, data)
		if err != nil {
			t.Fatal(err)
		}
		var got []Chunk
		if err := g.SplitRawBytes(data, func(r Raw) error {
			got = append(got, Chunk{ID: Sum(r.Data), Offset: r.Offset, Data: r.Data})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: SplitRawBytes produced %d chunks, Split produced %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i].Offset != want[i].Offset || got[i].ID != want[i].ID {
				t.Fatalf("size %d: chunk %d diverges", size, i)
			}
		}
	}
}
