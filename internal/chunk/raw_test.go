package chunk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// rawEquivalence asserts SplitRaw finds byte-identical chunks (offsets,
// lengths, content hashes) to Split on the same input.
func rawEquivalence(t *testing.T, c interface {
	Chunker
	RawChunker
}, data []byte) {
	t.Helper()
	want, err := SplitBytes(c, data)
	if err != nil {
		t.Fatal(err)
	}
	var got []Chunk
	err = c.SplitRaw(bytes.NewReader(data), func(r Raw) error {
		// Copy before Release: the payload is only valid until then.
		d := make([]byte, len(r.Data))
		copy(d, r.Data)
		r.Release()
		got = append(got, Chunk{ID: Sum(d), Offset: r.Offset, Data: d})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SplitRaw produced %d chunks, Split produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].ID != want[i].ID {
			t.Fatalf("chunk %d diverges: raw (off=%d id=%s) vs split (off=%d id=%s)",
				i, got[i].Offset, got[i].ID, want[i].Offset, want[i].ID)
		}
	}
	if re, err := Reassemble(got); err != nil || !bytes.Equal(re, data) {
		t.Fatalf("raw chunks do not reassemble to the input (err=%v)", err)
	}
}

func TestGearSplitRawMatchesSplit(t *testing.T) {
	g := NewDefaultGearChunker()
	rng := rand.New(rand.NewSource(5))
	for _, size := range []int{0, 1, 100, DefaultGearMin, DefaultGearMax,
		DefaultGearMax + 1, 300*1024 + 7} {
		data := make([]byte, size)
		rng.Read(data)
		rawEquivalence(t, g, data)
	}
	// Constant input maximizes max-size boundaries.
	rawEquivalence(t, g, bytes.Repeat([]byte{0xAB}, 200*1024))
}

func TestGearSplitRawSmallGeometry(t *testing.T) {
	g, err := NewGearChunker(64, 256, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 37*1024+13)
	rng.Read(data)
	rawEquivalence(t, g, data)
}

func TestFixedSplitRawMatchesSplit(t *testing.T) {
	f, err := NewFixedChunker(4096)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{0, 1, 4095, 4096, 4097, 100 * 1024} {
		data := make([]byte, size)
		rng.Read(data)
		rawEquivalence(t, f, data)
	}
}

// TestGearSplitRawChoppyReader feeds the scanner tiny irregular reads so
// block refills land mid-chunk.
func TestGearSplitRawChoppyReader(t *testing.T) {
	g := NewDefaultGearChunker()
	rng := rand.New(rand.NewSource(8))
	data := make([]byte, 150*1024)
	rng.Read(data)

	want, err := SplitBytes(g, data)
	if err != nil {
		t.Fatal(err)
	}
	var got []Chunk
	err = g.SplitRaw(iotestChoppy{bytes.NewReader(data), rand.New(rand.NewSource(9))}, func(r Raw) error {
		d := append([]byte(nil), r.Data...)
		r.Release()
		got = append(got, Chunk{ID: Sum(d), Offset: r.Offset, Data: d})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("choppy reads changed chunking: %d vs %d chunks", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("chunk %d diverges under choppy reads", i)
		}
	}
}

// iotestChoppy yields 1..97 bytes per read.
type iotestChoppy struct {
	r   *bytes.Reader
	rng *rand.Rand
}

func (c iotestChoppy) Read(p []byte) (int, error) {
	n := 1 + c.rng.Intn(97)
	if n > len(p) {
		n = len(p)
	}
	return c.r.Read(p[:n])
}

// TestSplitRawEmitError checks early-abort paths surface the callback
// error and do not panic on buffer cleanup.
func TestSplitRawEmitError(t *testing.T) {
	g := NewDefaultGearChunker()
	data := make([]byte, 256*1024)
	rand.New(rand.NewSource(10)).Read(data)
	boom := errors.New("boom")
	calls := 0
	err := g.SplitRaw(bytes.NewReader(data), func(r Raw) error {
		r.Release()
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not surfaced: %v", err)
	}
	if calls != 2 {
		t.Fatalf("emit called %d times after abort, want 2", calls)
	}
}

// TestSplitRawReadError: a failing reader surfaces its error.
func TestSplitRawReadError(t *testing.T) {
	g := NewDefaultGearChunker()
	broken := errors.New("disk on fire")
	var emitted int
	err := g.SplitRaw(&failAfter{data: bytes.Repeat([]byte{1}, 200*1024), fail: broken}, func(r Raw) error {
		r.Release()
		emitted++
		return nil
	})
	if !errors.Is(err, broken) {
		t.Fatalf("read error not surfaced: %v", err)
	}
	if emitted == 0 {
		t.Fatal("no chunks emitted before the failure")
	}
}

type failAfter struct {
	data []byte
	fail error
}

func (f *failAfter) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, f.fail
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := getBuf(DefaultGearMax)
	if cap(b) < DefaultGearMax {
		t.Fatalf("getBuf(%d) capacity %d", DefaultGearMax, cap(b))
	}
	if len(b) != 0 {
		t.Fatalf("getBuf returned len %d, want 0", len(b))
	}
	putBuf(b)
	// Foreign and degenerate slices must be tolerated.
	putBuf(nil)
	putBuf(make([]byte, 3))
	Raw{Data: make([]byte, 10)}.Release()
	if c := poolClass(0); c != -1 {
		t.Fatalf("poolClass(0) = %d, want -1", c)
	}
	if c := poolClass(1 << 30); c != -1 {
		t.Fatalf("poolClass(1<<30) = %d, want -1 (beyond pooled range)", c)
	}
}
