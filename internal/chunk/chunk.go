// Package chunk provides the chunking substrate of the EF-dedup Dedup
// Agent: splitting byte streams into chunks and naming each chunk by the
// SHA-256 of its content.
//
// Two chunker families are provided:
//
//   - FixedChunker: equal-size chunks, matching the paper's duperemove-based
//     prototype and the equal-size-chunk assumption of the analytic model.
//   - GearChunker: content-defined chunking (CDC) using a gear hash — the
//     paper's "variable-size chunking" future-work extension. Boundaries are
//     chosen by content, so insertions shift at most the neighbouring chunks.
package chunk

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// IDSize is the byte length of a chunk identifier.
const IDSize = sha256.Size

// ID is a content-derived chunk identifier (SHA-256 of the chunk bytes).
type ID [IDSize]byte

// Sum returns the identifier of the given chunk content.
func Sum(data []byte) ID { return sha256.Sum256(data) }

// String returns the hexadecimal form of the identifier.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// ParseID decodes a 64-character hexadecimal chunk identifier.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != 2*IDSize {
		return id, fmt.Errorf("chunk: ID %q has length %d, want %d", s, len(s), 2*IDSize)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("chunk: parse ID: %w", err)
	}
	copy(id[:], b)
	return id, nil
}

// Chunk is one unit of deduplication: a contiguous byte range of the input
// plus its content identifier.
type Chunk struct {
	// ID is the SHA-256 of Data.
	ID ID
	// Offset is the byte offset of the chunk in the original stream.
	Offset int64
	// Data is the chunk payload. Chunkers hand out freshly allocated
	// slices; callers own them.
	Data []byte
}

// Len returns the payload size in bytes.
func (c Chunk) Len() int { return len(c.Data) }

// Chunker splits a stream into chunks.
type Chunker interface {
	// Split reads r to EOF and invokes emit for every chunk in stream
	// order. It stops early and returns the callback's error if emit
	// fails. The final chunk may be shorter than the target size.
	Split(r io.Reader, emit func(Chunk) error) error
}

// SplitBytes is a convenience helper that splits an in-memory buffer and
// returns the chunk list.
func SplitBytes(c Chunker, data []byte) ([]Chunk, error) {
	var out []Chunk
	err := c.Split(bytesReader(data), func(ch Chunk) error {
		out = append(out, ch)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// bytesReader avoids importing bytes just for one constructor.
type byteSliceReader struct {
	data []byte
	off  int
}

func bytesReader(b []byte) io.Reader { return &byteSliceReader{data: b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// Reassemble concatenates chunks back into the original stream and verifies
// both the offsets and the content IDs. It is used by tests and by the
// restore path of the cloud store.
func Reassemble(chunks []Chunk) ([]byte, error) {
	var total int64
	for i, c := range chunks {
		if c.Offset != total {
			return nil, fmt.Errorf("chunk: chunk %d at offset %d, want %d", i, c.Offset, total)
		}
		if Sum(c.Data) != c.ID {
			return nil, fmt.Errorf("chunk: chunk %d content does not match its ID", i)
		}
		total += int64(len(c.Data))
	}
	out := make([]byte, 0, total)
	for _, c := range chunks {
		out = append(out, c.Data...)
	}
	return out, nil
}
