package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchData(n int) []byte {
	rng := rand.New(rand.NewSource(1))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func BenchmarkFixedChunker(b *testing.B) {
	data := benchData(4 << 20)
	c, err := NewFixedChunker(8192)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitBytes(c, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGearChunker(b *testing.B) {
	data := benchData(4 << 20)
	c := NewDefaultGearChunker()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SplitBytes(c, data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChunkerShiftAblation quantifies the design choice behind CDC
// (the paper's variable-size-chunking future work): chunk-ID survival
// after a 7-byte prefix insertion, reported as a custom metric.
func BenchmarkChunkerShiftAblation(b *testing.B) {
	data := benchData(1 << 20)
	shifted := append(benchData(7), data...)
	chunkers := map[string]Chunker{
		"fixed8k": mustFixedB(b, 8192),
		"gear":    NewDefaultGearChunker(),
	}
	for name, c := range chunkers {
		b.Run(name, func(b *testing.B) {
			var survival float64
			for i := 0; i < b.N; i++ {
				orig, err := SplitBytes(c, data)
				if err != nil {
					b.Fatal(err)
				}
				ids := make(map[ID]bool, len(orig))
				for _, ck := range orig {
					ids[ck.ID] = true
				}
				moved, err := SplitBytes(c, shifted)
				if err != nil {
					b.Fatal(err)
				}
				kept := 0
				for _, ck := range moved {
					if ids[ck.ID] {
						kept++
					}
				}
				survival = float64(kept) / float64(len(orig)) * 100
			}
			b.ReportMetric(survival, "id-survival-%")
		})
	}
}

func mustFixedB(b *testing.B, size int) *FixedChunker {
	b.Helper()
	c, err := NewFixedChunker(size)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkGearSplitRaw isolates the boundary scanner (no SHA, no
// caller copy) in its three forms: the pre-acceleration reference loop,
// the vectorized streaming scanner, and the zero-copy bytes scanner.
func BenchmarkGearSplitRaw(b *testing.B) {
	data := benchData(4 << 20)
	c := NewDefaultGearChunker()
	discard := func(r Raw) error {
		r.Release()
		return nil
	}
	b.Run("reference", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := c.splitRawReference(bytes.NewReader(data), discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vectorized", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := c.SplitRaw(bytes.NewReader(data), discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("zerocopy", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if err := c.SplitRawBytes(data, discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}
