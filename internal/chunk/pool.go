package chunk

import (
	"io"
	"math/bits"
	"sync"
)

// Buffer pooling for the raw-chunk path. SplitRaw hands out chunk
// payloads backed by a size-classed sync.Pool arena instead of a fresh
// make+copy per chunk, eliminating the dominant per-chunk allocation on
// the dedup hot path. Pooling is an internal contract between the
// chunkers and the agent pipeline: the public Chunk API is unchanged
// (Split still hands out freshly allocated slices the caller owns), and
// a Raw payload returns to the arena only through an explicit Release
// once its chunk has been uploaded or deduplicated.

// Raw is one chunk boundary before hashing: the payload and its stream
// offset, but no content ID yet. Computing SHA-256 is the consumer's
// job, which lets a pipeline fan hashing out across workers instead of
// paying it on the chunker goroutine.
//
// Data is backed by the chunk buffer arena. The receiver of a Raw owns
// it and must call Release exactly once when the payload is dead (after
// upload, or on discovering it is a duplicate); after Release the slice
// contents may be overwritten by a later chunk.
type Raw struct {
	// Offset is the byte offset of the chunk in the original stream.
	Offset int64
	// Data is the chunk payload, valid until Release.
	Data []byte
}

// Release returns the payload's storage to the arena. The Raw (and any
// Chunk aliasing its Data) must not be used afterwards.
func (r Raw) Release() { putBuf(r.Data) }

// RawChunker is implemented by chunkers that can emit unhashed chunks
// with pooled payloads. Like Split, SplitRaw invokes emit in stream
// order and stops on the callback's error; unlike Split, ownership of
// each payload transfers to the callback (see Raw).
type RawChunker interface {
	SplitRaw(r io.Reader, emit func(Raw) error) error
}

// RawBytesChunker is the zero-copy variant of RawChunker for callers
// whose input is already in memory: emitted payloads alias data rather
// than arena buffers, so the caller must keep data alive and unmodified
// until every emitted Raw has been Released. Release remains safe on
// aliased payloads — their capacities are deliberately kept off the
// arena's size classes so putBuf drops them (see SplitRawBytes).
type RawBytesChunker interface {
	SplitRawBytes(data []byte, emit func(Raw) error) error
}

// The arena: one sync.Pool per power-of-two capacity class. Chunk
// geometries are known up front (a chunker's max size), so buffers are
// allocated at the class ceiling and resliced; putBuf files a buffer
// back under its capacity class. Classes below 512 B are not pooled —
// no supported geometry produces them.
const (
	minPoolClass = 9  // 512 B
	maxPoolClass = 26 // 64 MiB
)

var bufPools [maxPoolClass + 1]sync.Pool

// poolClass returns the index of the smallest class holding n bytes, or
// -1 when n is outside the pooled range.
func poolClass(n int) int {
	if n <= 0 || n > 1<<maxPoolClass {
		return -1
	}
	c := bits.Len(uint(n - 1))
	if c < minPoolClass {
		c = minPoolClass
	}
	return c
}

// getBuf returns a zero-length buffer with capacity ≥ n, reusing a
// pooled one when available.
func getBuf(n int) []byte {
	c := poolClass(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	if b, ok := bufPools[c].Get().(*[]byte); ok {
		return (*b)[:0]
	}
	return make([]byte, 0, 1<<c)
}

// putBuf files b's storage back into its capacity class. Buffers whose
// capacity is not an exact class size did not come from the arena (or
// were resliced past recognition) and are dropped for the GC instead —
// Release therefore tolerates foreign slices.
func putBuf(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c - 1))
	if cls < minPoolClass || cls > maxPoolClass {
		return
	}
	full := b[:0:c]
	bufPools[cls].Put(&full)
}
