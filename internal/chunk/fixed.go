package chunk

import (
	"fmt"
	"io"
)

// DefaultFixedSize is the default fixed chunk size: 8 KiB, mirroring the
// duperemove-style prototype in the paper.
const DefaultFixedSize = 8 * 1024

// FixedChunker splits a stream into equal-size chunks (the last chunk may
// be shorter). The zero value is not usable; construct with NewFixedChunker.
type FixedChunker struct {
	size int
}

var (
	_ Chunker    = (*FixedChunker)(nil)
	_ RawChunker = (*FixedChunker)(nil)
)

// NewFixedChunker returns a chunker producing size-byte chunks. size must
// be positive.
func NewFixedChunker(size int) (*FixedChunker, error) {
	if size <= 0 {
		return nil, fmt.Errorf("chunk: fixed chunk size %d must be positive", size)
	}
	return &FixedChunker{size: size}, nil
}

// Size returns the configured chunk size.
func (f *FixedChunker) Size() int { return f.size }

// Split implements Chunker.
func (f *FixedChunker) Split(r io.Reader, emit func(Chunk) error) error {
	var offset int64
	for {
		buf := make([]byte, f.size)
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			data := buf[:n]
			c := Chunk{ID: Sum(data), Offset: offset, Data: data}
			if cbErr := emit(c); cbErr != nil {
				return cbErr
			}
			offset += int64(n)
		}
		switch err {
		case nil:
			continue
		case io.EOF, io.ErrUnexpectedEOF:
			return nil
		default:
			return fmt.Errorf("chunk: read input: %w", err)
		}
	}
}

// SplitRaw implements RawChunker: same boundaries as Split, but the
// payloads are pooled and unhashed (see Raw).
func (f *FixedChunker) SplitRaw(r io.Reader, emit func(Raw) error) error {
	var offset int64
	for {
		buf := getBuf(f.size)[:f.size]
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			if cbErr := emit(Raw{Offset: offset, Data: buf[:n]}); cbErr != nil {
				return cbErr
			}
			offset += int64(n)
		} else {
			putBuf(buf)
		}
		switch err {
		case nil:
			continue
		case io.EOF, io.ErrUnexpectedEOF:
			return nil
		default:
			return fmt.Errorf("chunk: read input: %w", err)
		}
	}
}
