// Package faultnet is EF-dedup's chaos layer: a fault-injecting wrapper
// around any transport.Network-shaped fabric (the in-memory fabric, real
// TCP, or a netem-shaped view of either). It exists to prove the paper's
// reliability claims — that a D2-ring keeps deduplicating through
// index-node failures and membership churn (Sec. IV/V) — under scripted
// WAN faults rather than hoping for them.
//
// A Fabric holds global fault state; NetworkFor returns a site-local
// Listen/Dial view, mirroring netem.Topology's API so the two compose in
// either order:
//
//	topo := netem.NewTopology(wan)
//	chaos := faultnet.NewFabric(faultnet.Config{Seed: 1})
//	nw := chaos.NetworkFor("edge-a", topo.NetworkFor("edge-a", mem))
//
// Faults come in two flavours:
//
//   - Scripted: Partition/Heal cut a directed site pair (new dials are
//     refused, established connections crossing the cut are reset);
//     Isolate/Restore cut one address both ways. Schedule arms a timer so
//     tests can script "partition ring A from node 2 for 500ms, then
//     heal" and let the workload run through it.
//   - Stochastic but deterministic: Config probabilities inject dial
//     refusals, mid-stream connection resets and transient write stalls
//     from a seeded PRNG, so a chaos run is reproducible from its seed.
package faultnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"efdedup/internal/metrics"
)

// ErrInjected marks every failure this package fabricates, so tests and
// retry classifiers can tell injected faults from real ones.
var ErrInjected = errors.New("faultnet: injected fault")

// Inner is the Listen/Dial slice faultnet wraps. transport.TCPNetwork,
// *transport.MemNetwork and *netem.Network all satisfy it.
type Inner interface {
	Listen(addr string) (net.Listener, error)
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// Config tunes the stochastic fault injectors. All probabilities are in
// [0,1]; the zero value injects nothing until scripted faults are added.
type Config struct {
	// Seed drives the PRNG behind every probabilistic fault; zero means
	// time-seeded (non-reproducible).
	Seed int64
	// DialFailProb is the probability that a dial is refused.
	DialFailProb float64
	// ResetProb is the per-write probability that the connection is
	// reset mid-stream.
	ResetProb float64
	// StallProb is the per-write probability of a transient stall of
	// StallFor before the bytes move.
	StallProb float64
	// StallFor is the stall duration; defaults to 20ms when StallProb is
	// set.
	StallFor time.Duration
	// Latency is a fixed delay injected before every dialed-connection
	// write, modelling one-way WAN propagation from the dialing site.
	// Unlike the stochastic stalls it applies to all traffic
	// deterministically, so benchmarks can shape an edge-to-cloud link
	// and measure how round-trip count dominates restore throughput.
	Latency time.Duration
}

// Fabric is the shared chaos state: site registry, active cuts, open
// connections and scripted timers. Safe for concurrent use.
type Fabric struct {
	cfg Config

	mu       sync.Mutex
	rng      *rand.Rand
	siteOf   map[string]string   // listen address -> site
	cutSites map[[2]string]bool  // directed (fromSite, toSite) cuts
	cutNodes map[string]bool     // fully isolated addresses
	conns    map[*faultConn]bool // open dialed connections
	timers   map[*time.Timer]bool
	closed   bool

	// injected counts fabricated faults per kind, so a chaos run's
	// metrics dump shows how much adversity the workload actually faced.
	injected map[string]*metrics.Counter
}

// NewFabric builds an empty fabric.
func NewFabric(cfg Config) *Fabric {
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	if cfg.StallProb > 0 && cfg.StallFor <= 0 {
		cfg.StallFor = 20 * time.Millisecond
	}
	reg := metrics.Default()
	injected := make(map[string]*metrics.Counter)
	for _, kind := range []string{
		kindDialCut, kindDialRefused, kindReset, kindStall, kindPartitionReset,
	} {
		injected[kind] = reg.Counter("faultnet_injected_total", "kind", kind)
	}
	return &Fabric{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		siteOf:   make(map[string]string),
		cutSites: make(map[[2]string]bool),
		cutNodes: make(map[string]bool),
		conns:    make(map[*faultConn]bool),
		timers:   make(map[*time.Timer]bool),
		injected: injected,
	}
}

// Injected-fault kinds, the label values of faultnet_injected_total.
const (
	kindDialCut        = "dial-cut"        // dial refused by a scripted cut
	kindDialRefused    = "dial-refused"    // stochastic dial refusal
	kindReset          = "reset"           // stochastic mid-stream reset
	kindStall          = "stall"           // transient write stall
	kindPartitionReset = "partition-reset" // established conn killed by a cut
)

// Register maps a listen address to a site (normally done by Listen; use
// this for services bound outside a fabric view).
func (f *Fabric) Register(addr, site string) {
	f.mu.Lock()
	f.siteOf[addr] = site
	f.mu.Unlock()
}

// Partition cuts traffic from one site to another (one direction): new
// dials crossing the cut are refused and established connections dialed
// across it are reset. An RPC connection needs both directions, so a
// one-way cut kills its streams; the asymmetry matters for *new* dials,
// modelling one-way reachability loss.
func (f *Fabric) Partition(fromSite, toSite string) {
	f.mu.Lock()
	f.cutSites[[2]string{fromSite, toSite}] = true
	//lint:ignore lockedio2 matchingLocked only collects matching conns in memory; the resets happen via kill after Unlock
	victims := f.matchingLocked(func(c *faultConn) bool {
		return c.fromSite == fromSite && c.toSite == toSite
	})
	f.mu.Unlock()
	kill(victims)
}

// PartitionBoth cuts a site pair in both directions.
func (f *Fabric) PartitionBoth(a, b string) {
	f.Partition(a, b)
	f.Partition(b, a)
}

// Heal removes a directed site cut.
func (f *Fabric) Heal(fromSite, toSite string) {
	f.mu.Lock()
	delete(f.cutSites, [2]string{fromSite, toSite})
	f.mu.Unlock()
}

// HealBoth removes both directions of a site cut.
func (f *Fabric) HealBoth(a, b string) {
	f.Heal(a, b)
	f.Heal(b, a)
}

// Isolate cuts one address off: dials to it are refused and its
// established connections are reset.
func (f *Fabric) Isolate(addr string) {
	f.mu.Lock()
	f.cutNodes[addr] = true
	//lint:ignore lockedio2 matchingLocked only collects matching conns in memory; the resets happen via kill after Unlock
	victims := f.matchingLocked(func(c *faultConn) bool { return c.raddr == addr })
	f.mu.Unlock()
	kill(victims)
}

// Restore lifts an Isolate.
func (f *Fabric) Restore(addr string) {
	f.mu.Lock()
	delete(f.cutNodes, addr)
	f.mu.Unlock()
}

// HealAll removes every scripted cut (site- and node-level).
func (f *Fabric) HealAll() {
	f.mu.Lock()
	f.cutSites = make(map[[2]string]bool)
	f.cutNodes = make(map[string]bool)
	f.mu.Unlock()
}

// Schedule arms step to run against the fabric after d — the scripting
// hook: chain Schedule calls to express "partition at t=100ms, heal at
// t=600ms". Close cancels pending steps.
func (f *Fabric) Schedule(d time.Duration, step func(*Fabric)) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		f.mu.Lock()
		closed := f.closed
		delete(f.timers, t)
		f.mu.Unlock()
		if !closed {
			step(f)
		}
	})
	f.timers[t] = true
	f.mu.Unlock()
}

// Close cancels scheduled steps and resets remaining chaos connections.
func (f *Fabric) Close() {
	f.mu.Lock()
	f.closed = true
	for t := range f.timers {
		t.Stop()
	}
	f.timers = make(map[*time.Timer]bool)
	//lint:ignore lockedio2 matchingLocked only collects matching conns in memory; the resets happen via kill after Unlock
	victims := f.matchingLocked(func(*faultConn) bool { return true })
	f.mu.Unlock()
	kill(victims)
}

// Cut reports whether fromSite→toSite is currently partitioned.
func (f *Fabric) Cut(fromSite, toSite string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cutSites[[2]string{fromSite, toSite}]
}

// matchingLocked collects open connections satisfying match. Callers hold mu.
func (f *Fabric) matchingLocked(match func(*faultConn) bool) []*faultConn {
	var out []*faultConn
	for c := range f.conns {
		if match(c) {
			out = append(out, c)
		}
	}
	return out
}

func kill(conns []*faultConn) {
	for _, c := range conns {
		c.f.injected[kindPartitionReset].Inc()
		c.breakWith(fmt.Errorf("%w: connection reset by partition", ErrInjected))
	}
}

// track registers an open dialed connection; forget removes it.
func (f *Fabric) track(c *faultConn) {
	f.mu.Lock()
	if !f.closed {
		f.conns[c] = true
	}
	f.mu.Unlock()
}

func (f *Fabric) forget(c *faultConn) {
	f.mu.Lock()
	delete(f.conns, c)
	f.mu.Unlock()
}

// roll draws one uniform [0,1) variate from the fabric's seeded PRNG.
func (f *Fabric) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// site resolves an address's site ("" when unregistered — only node-level
// cuts apply then).
func (f *Fabric) site(addr string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.siteOf[addr]
}

// refused reports whether a dial from fromSite to addr crosses an active
// cut.
func (f *Fabric) refused(fromSite, addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cutNodes[addr] {
		return true
	}
	to := f.siteOf[addr]
	return f.cutSites[[2]string{fromSite, to}]
}

// Network is one site's chaos-shaped view of an inner fabric, satisfying
// transport.Network.
type Network struct {
	f     *Fabric
	site  string
	inner Inner
}

// NetworkFor returns the chaos view for services located at site.
func (f *Fabric) NetworkFor(site string, inner Inner) *Network {
	return &Network{f: f, site: site, inner: inner}
}

// Site returns the view's site name.
func (n *Network) Site() string { return n.site }

// Listen binds addr on the inner network and registers it at this view's
// site.
func (n *Network) Listen(addr string) (net.Listener, error) {
	l, err := n.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	n.f.Register(l.Addr().String(), n.site)
	return l, nil
}

// Dial connects to addr unless a scripted cut or an injected dial
// refusal stands in the way. The returned connection is subject to
// partition resets and the configured stochastic faults.
func (n *Network) Dial(ctx context.Context, addr string) (net.Conn, error) {
	if n.f.refused(n.site, addr) {
		n.f.injected[kindDialCut].Inc()
		return nil, fmt.Errorf("%w: dial %q: partitioned from %q", ErrInjected, addr, n.site)
	}
	if p := n.f.cfg.DialFailProb; p > 0 && n.f.roll() < p {
		n.f.injected[kindDialRefused].Inc()
		return nil, fmt.Errorf("%w: dial %q: connection refused", ErrInjected, addr)
	}
	conn, err := n.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := &faultConn{
		Conn:     conn,
		f:        n.f,
		fromSite: n.site,
		raddr:    addr,
		toSite:   n.f.site(addr),
	}
	n.f.track(c)
	return c, nil
}

// faultConn wraps a dialed connection with injected failure modes. A
// broken connection stays broken: every subsequent Read/Write returns
// the injected error, like a real reset socket.
type faultConn struct {
	net.Conn
	f        *Fabric
	fromSite string
	toSite   string
	raddr    string

	mu     sync.Mutex
	broken error
}

// breakWith marks the connection dead and closes the underlying conn so
// blocked readers and the peer observe the reset.
func (c *faultConn) breakWith(err error) {
	c.mu.Lock()
	already := c.broken != nil
	if !already {
		c.broken = err
	}
	c.mu.Unlock()
	if !already {
		c.Conn.Close()
		c.f.forget(c)
	}
}

func (c *faultConn) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// Write applies stochastic faults before delegating.
func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.brokenErr(); err != nil {
		return 0, err
	}
	cfg := c.f.cfg
	if cfg.Latency > 0 {
		time.Sleep(cfg.Latency)
	}
	if cfg.ResetProb > 0 && c.f.roll() < cfg.ResetProb {
		c.f.injected[kindReset].Inc()
		err := fmt.Errorf("%w: connection reset mid-stream", ErrInjected)
		c.breakWith(err)
		return 0, err
	}
	if cfg.StallProb > 0 && c.f.roll() < cfg.StallProb {
		c.f.injected[kindStall].Inc()
		time.Sleep(cfg.StallFor)
	}
	return c.Conn.Write(p)
}

// Read delegates, surfacing the injected error once broken.
func (c *faultConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil {
		if berr := c.brokenErr(); berr != nil {
			return n, berr
		}
	}
	return n, err
}

// Close implements net.Conn.
func (c *faultConn) Close() error {
	c.f.forget(c)
	return c.Conn.Close()
}
