// Chaos end-to-end test for the container restore path: a client
// streams a multi-container restore while scripted faults kill the
// cloud connection mid-flight — twice. The retry layer must redial and
// resume transparently, and the output must stay byte-identical.
package faultnet_test

import (
	"bytes"
	"context"
	"io"
	"testing"
	"time"

	"efdedup/internal/cloudstore"
	"efdedup/internal/faultnet"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// slowWriter throttles the restore sink so scripted faults land while
// container fetches are still in flight.
type slowWriter struct {
	w     io.Writer
	delay time.Duration
}

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.w.Write(p)
}

func TestRestoreSurvivesCloudOutagesMidStream(t *testing.T) {
	mem := transport.NewMemNetwork()
	fab := faultnet.NewFabric(faultnet.Config{Seed: 7})
	defer fab.Close()
	cloudNW := fab.NetworkFor("cloud", mem)
	edgeNW := fab.NetworkFor("edge", mem)

	srv, err := cloudstore.NewServer(cloudstore.Config{ContainerBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	l, err := cloudNW.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	defer srv.Close()

	// A retry policy generous enough to ride out the scripted outages;
	// the breaker threshold is high so fail-fast never masks the retry
	// path under test.
	cl, err := cloudstore.DialWithPolicy(context.Background(), edgeNW, "cloud",
		retrypolicy.Policy{MaxAttempts: 15, BaseDelay: 25 * time.Millisecond, MaxDelay: 150 * time.Millisecond, Seed: 7},
		retrypolicy.BreakerConfig{FailureThreshold: 1000, OpenFor: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	data := chaosData(31, 256*1024)
	if _, err := cl.UploadRaw(ctx, "vm-image", data); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	// Two scripted outages: the first kills in-flight container fetches
	// early in the restore, the second after the client has redialed.
	fab.Schedule(40*time.Millisecond, func(f *faultnet.Fabric) { f.PartitionBoth("edge", "cloud") })
	fab.Schedule(240*time.Millisecond, func(f *faultnet.Fabric) { f.HealAll() })
	fab.Schedule(500*time.Millisecond, func(f *faultnet.Fabric) { f.PartitionBoth("edge", "cloud") })
	fab.Schedule(700*time.Millisecond, func(f *faultnet.Fabric) { f.HealAll() })

	var buf bytes.Buffer
	st, err := cl.RestoreTo(ctx, "vm-image", &slowWriter{w: &buf, delay: 8 * time.Millisecond},
		cloudstore.RestoreOptions{ReadAhead: 3, CacheContainers: 4})
	if err != nil {
		t.Fatalf("restore aborted under scripted outages: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("restore under faults differs from original")
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("stats.Bytes = %d, want %d", st.Bytes, len(data))
	}
	if st.ContainersTouched < 10 {
		t.Fatalf("ContainersTouched = %d, want a genuinely multi-container stream", st.ContainersTouched)
	}
}

// TestRestoreSurvivesStochasticStalls runs a restore through a fabric
// injecting seeded random connection stalls (slow, not dead) and checks
// the pipeline neither aborts nor corrupts output.
func TestRestoreSurvivesStochasticStalls(t *testing.T) {
	mem := transport.NewMemNetwork()
	fab := faultnet.NewFabric(faultnet.Config{
		Seed:      11,
		StallProb: 0.2,
		StallFor:  30 * time.Millisecond,
	})
	defer fab.Close()
	cloudNW := fab.NetworkFor("cloud", mem)
	edgeNW := fab.NetworkFor("edge", mem)

	srv, err := cloudstore.NewServer(cloudstore.Config{ContainerBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	l, err := cloudNW.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	defer srv.Close()

	cl, err := cloudstore.DialWithPolicy(context.Background(), edgeNW, "cloud",
		retrypolicy.Policy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Seed: 11},
		retrypolicy.BreakerConfig{FailureThreshold: 1000, OpenFor: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	data := chaosData(37, 192*1024)
	if _, err := cl.UploadRaw(ctx, "stalled-image", data); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	var buf bytes.Buffer
	if _, err := cl.RestoreTo(ctx, "stalled-image", &buf, cloudstore.RestoreOptions{ReadAhead: 4}); err != nil {
		t.Fatalf("restore aborted under stalls: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("restore under stalls differs from original")
	}
}
