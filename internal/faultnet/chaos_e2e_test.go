// Chaos end-to-end test: a full EF-dedup deployment (3-node D2-ring,
// cloud store, ring-mode agent) processes streams while a scripted
// partition cuts the agent off from the ring mid-stream. The pipeline
// must not abort: it downgrades to cloud-assisted lookups, records the
// downgrade, recovers once the partition heals, and every stream —
// including the one processed under the partition — restores
// byte-identical.
package faultnet_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/cloudstore"
	"efdedup/internal/faultnet"
	"efdedup/internal/kvstore"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// slowReader throttles a stream so scripted faults land mid-stream.
type slowReader struct {
	r     io.Reader
	chunk int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	n, err := s.r.Read(p)
	if n > 0 {
		time.Sleep(s.delay)
	}
	return n, err
}

// chaosBed is a complete deployment whose agent-side traffic runs through
// a chaos fabric: kv nodes at site "ring", cloud at site "cloud", and the
// agent dialing everything from site "edge".
type chaosBed struct {
	fab   *faultnet.Fabric
	agent *agent.Agent
	cloud *cloudstore.Client
	index *kvstore.Cluster
}

func newChaosBed(t *testing.T) *chaosBed {
	t.Helper()
	mem := transport.NewMemNetwork()
	fab := faultnet.NewFabric(faultnet.Config{Seed: 1})
	t.Cleanup(fab.Close)
	ringNW := fab.NetworkFor("ring", mem)
	cloudNW := fab.NetworkFor("cloud", mem)
	edgeNW := fab.NetworkFor("edge", mem)

	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := cloudNW.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	var members []string
	for i := 0; i < 3; i++ {
		node, err := kvstore.NewNode(kvstore.NodeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		addr := fmt.Sprintf("kv-%d", i)
		lk, err := ringNW.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		node.Serve(lk)
		t.Cleanup(func() { node.Close() })
		members = append(members, addr)
	}

	// Small timeouts and cool-downs so faults and recoveries play out in
	// test time.
	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:           members,
		ReplicationFactor: 2,
		Network:           edgeNW,
		CallTimeout:       100 * time.Millisecond,
		Retry:             retrypolicy.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1},
		Breaker:           retrypolicy.BreakerConfig{FailureThreshold: 3, OpenFor: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })

	cl, err := cloudstore.Dial(context.Background(), edgeNW, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	a, err := agent.New(agent.Config{
		Name:  "chaos-agent",
		Mode:  agent.ModeRing,
		Index: idx,
		Cloud: cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &chaosBed{fab: fab, agent: a, cloud: cl, index: idx}
}

func chaosData(seed int64, n int) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

func TestAgentSurvivesScriptedPartition(t *testing.T) {
	cb := newChaosBed(t)
	ctx := context.Background()

	// Baseline stream through the healthy fabric.
	pre := chaosData(1, 128*1024)
	if _, err := cb.agent.ProcessBytes(ctx, "pre", pre); err != nil {
		t.Fatalf("healthy baseline stream failed: %v", err)
	}

	// Script the outage: cut the agent off from the whole ring shortly
	// after the chaos stream starts, heal while later streams run. The
	// stream is throttled so the cut lands mid-flight and resets the
	// agent's established index connections.
	cb.fab.Schedule(20*time.Millisecond, func(f *faultnet.Fabric) { f.PartitionBoth("edge", "ring") })
	cb.fab.Schedule(600*time.Millisecond, func(f *faultnet.Fabric) { f.HealAll() })

	mid := chaosData(2, 256*1024)
	rep, err := cb.agent.ProcessStream(ctx, "mid-chaos",
		&slowReader{r: bytes.NewReader(mid), chunk: 16 * 1024, delay: 15 * time.Millisecond})
	if err != nil {
		t.Fatalf("stream aborted under partition: %v", err)
	}
	if rep.Downgrades == 0 || rep.DegradedLookups == 0 {
		t.Fatalf("partition did not register as a downgrade: %+v", rep)
	}
	if !cb.agent.Degraded() {
		t.Fatal("agent not in degraded mode right after the partition stream")
	}

	// After the scripted heal and the breakers' cool-down the agent must
	// recover to ring lookups on its own.
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for i := 0; time.Now().Before(deadline); i++ {
		name := fmt.Sprintf("post-%d", i)
		if _, err := cb.agent.ProcessBytes(ctx, name, chaosData(3, 64*1024)); err != nil {
			t.Fatalf("post-heal stream %s failed: %v", name, err)
		}
		if cb.agent.Totals().Recoveries > 0 {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatalf("agent never recovered after heal: totals %+v", cb.agent.Totals())
	}
	if cb.agent.Degraded() {
		t.Fatal("agent still degraded after recovery")
	}

	// Zero data loss: every stream, including the one processed under the
	// partition, restores byte-identical.
	for name, want := range map[string][]byte{
		"pre":       pre,
		"mid-chaos": mid,
		"post-0":    chaosData(3, 64*1024),
	} {
		got, err := cb.cloud.Restore(ctx, name)
		if err != nil {
			t.Fatalf("restore %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restore %s differs from input", name)
		}
	}
}
