// Durability chaos test: a D2-ring of WAL-backed index nodes loses a
// replica to an ungraceful kill mid-stream (with a torn record injected
// into its log, as a real crash leaves), restarts it from disk, repairs
// the ring with anti-entropy, then grows the ring by a member — and must
// come out of all of it with zero acknowledged chunks lost: re-processing
// every payload finds all chunks already indexed, and every stream
// restores from the cloud byte-identical.
package faultnet_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/cloudstore"
	"efdedup/internal/faultnet"
	"efdedup/internal/kvstore"
	"efdedup/internal/retrypolicy"
	"efdedup/internal/transport"
)

// durableBed is a chaosBed whose index nodes persist to disk and can be
// killed and restarted in place.
type durableBed struct {
	fab    *faultnet.Fabric
	agent  *agent.Agent
	cloud  *cloudstore.Client
	index  *kvstore.Cluster
	ringNW *faultnet.Network
	dir    string

	nodes map[string]*kvstore.Node
}

// durableNodeConfig builds the NodeConfig for addr: always-fsync WAL and
// a small snapshot threshold so snapshots actually happen in test time.
func (db *durableBed) durableNodeConfig(addr string) kvstore.NodeConfig {
	return kvstore.NodeConfig{
		WALPath:       filepath.Join(db.dir, addr+".wal"),
		WALSync:       kvstore.SyncAlways,
		SnapshotBytes: 16 << 10,
	}
}

// startNode starts (or restarts) a durable node on addr.
func (db *durableBed) startNode(t *testing.T, addr string) *kvstore.Node {
	t.Helper()
	node, err := kvstore.NewNode(db.durableNodeConfig(addr))
	if err != nil {
		t.Fatal(err)
	}
	l, err := db.ringNW.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(l)
	db.nodes[addr] = node
	return node
}

func newDurableBed(t *testing.T) *durableBed {
	t.Helper()
	mem := transport.NewMemNetwork()
	fab := faultnet.NewFabric(faultnet.Config{Seed: 7})
	t.Cleanup(fab.Close)

	db := &durableBed{
		fab:    fab,
		ringNW: fab.NetworkFor("ring", mem),
		dir:    t.TempDir(),
		nodes:  make(map[string]*kvstore.Node),
	}
	cloudNW := fab.NetworkFor("cloud", mem)
	edgeNW := fab.NetworkFor("edge", mem)

	srv, err := cloudstore.NewServer(cloudstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := cloudNW.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(func() { srv.Close() })

	var members []string
	for i := 0; i < 3; i++ {
		addr := fmt.Sprintf("kv-%d", i)
		db.startNode(t, addr)
		members = append(members, addr)
	}
	t.Cleanup(func() {
		for _, n := range db.nodes {
			n.Close()
		}
	})

	idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
		Members:           members,
		ReplicationFactor: 2,
		Network:           edgeNW,
		CallTimeout:       100 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
		Retry:             retrypolicy.Policy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1},
		Breaker:           retrypolicy.BreakerConfig{FailureThreshold: 3, OpenFor: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { idx.Close() })
	db.index = idx

	cl, err := cloudstore.Dial(context.Background(), edgeNW, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	db.cloud = cl

	a, err := agent.New(agent.Config{
		Name:  "durable-agent",
		Mode:  agent.ModeRing,
		Index: idx,
		Cloud: cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	db.agent = a
	return db
}

// tearWAL appends a half-written record to a killed node's log, the exact
// artifact a crash mid-append leaves on disk.
func tearWAL(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Header claims 64 payload bytes; only 5 follow.
	if _, err := f.Write([]byte{0, 0, 0, 64, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// repairUntilConverged runs anti-entropy rounds until one proves every
// pair equal.
func repairUntilConverged(t *testing.T, c *kvstore.Cluster) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		stats, err := c.RepairOnce(ctx)
		cancel()
		if err == nil && stats.Converged() {
			return
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("ring never converged: stats %+v err %v", stats, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDurableRingSurvivesKillRestartRejoin(t *testing.T) {
	db := newDurableBed(t)
	ctx := context.Background()
	payloads := map[string][]byte{}

	// Healthy baseline.
	payloads["pre"] = chaosData(11, 128*1024)
	if _, err := db.agent.ProcessBytes(ctx, "pre", payloads["pre"]); err != nil {
		t.Fatalf("baseline stream: %v", err)
	}

	// Kill one replica ungracefully while a throttled stream is mid-flight.
	const victim = "kv-1"
	time.AfterFunc(30*time.Millisecond, func() { db.nodes[victim].Kill() })
	payloads["mid-kill"] = chaosData(12, 256*1024)
	rep, err := db.agent.ProcessStream(ctx, "mid-kill",
		&slowReader{r: bytes.NewReader(payloads["mid-kill"]), chunk: 16 * 1024, delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("stream aborted by replica kill: %v", err)
	}
	if rep.InputChunks == 0 {
		t.Fatalf("empty report: %+v", rep)
	}

	// The crash left a torn half-record on the victim's log.
	tearWAL(t, filepath.Join(db.dir, victim+".wal"))

	// A second stream runs against the degraded ring (RF=2 keeps every key
	// answerable by the surviving replica).
	payloads["while-down"] = chaosData(13, 128*1024)
	if _, err := db.agent.ProcessBytes(ctx, "while-down", payloads["while-down"]); err != nil {
		t.Fatalf("stream during outage: %v", err)
	}

	// Restart the victim from its own disk: snapshot + WAL suffix, torn
	// tail classified and truncated.
	restarted := db.startNode(t, victim)
	if rs := restarted.RecoveryStats(); rs.TornBytes == 0 {
		t.Fatalf("injected torn tail not detected: %+v", rs)
	}

	// Anti-entropy reconciles what the victim missed while down.
	repairUntilConverged(t, db.index)

	// Grow the ring mid-run: a fresh durable member joins, placement is
	// rebalanced, and repair proves convergence over the new topology.
	const joiner = "kv-3"
	db.startNode(t, joiner)
	if err := db.index.AddMember(joiner); err != nil {
		t.Fatal(err)
	}
	if err := db.index.Rebalance(ctx); err != nil {
		t.Fatalf("rebalance after join: %v", err)
	}
	repairUntilConverged(t, db.index)

	// Zero acknowledged chunks lost: re-processing every payload under a
	// new name must find every chunk already indexed — an uploaded chunk
	// here means the ring forgot something it acknowledged.
	for name, data := range payloads {
		rep, err := db.agent.ProcessBytes(ctx, name+"-replay", data)
		if err != nil {
			t.Fatalf("re-process %s: %v", name, err)
		}
		if rep.UploadedChunks != 0 || rep.DuplicateChunks != rep.InputChunks {
			t.Fatalf("%s lost acknowledged chunks: %+v", name, rep)
		}
	}

	// And the cloud is consistent: every stream restores byte-identical.
	for name, want := range payloads {
		got, err := db.cloud.Restore(ctx, name)
		if err != nil {
			t.Fatalf("restore %s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restore %s differs from input", name)
		}
	}
}
