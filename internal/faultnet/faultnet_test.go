package faultnet

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"efdedup/internal/netem"
	"efdedup/internal/transport"
)

// echoListener accepts connections and echoes frames back.
func serveEcho(t *testing.T, l net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn) //nolint:errcheck // test echo
			}()
		}
	}()
	t.Cleanup(func() { l.Close() })
}

// roundTrip writes msg and reads it back through an echo server.
func roundTrip(conn net.Conn, msg string) error {
	if _, err := conn.Write([]byte(msg)); err != nil {
		return err
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	_, err := io.ReadFull(conn, buf)
	return err
}

func TestDialAndTalkThroughFabric(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 1})
	ring := f.NetworkFor("ring", mem)
	edge := f.NetworkFor("edge", mem)

	l, err := ring.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)

	conn, err := edge.Dial(context.Background(), "kv-0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := roundTrip(conn, "hello"); err != nil {
		t.Fatalf("round trip through healthy fabric: %v", err)
	}
}

// TestPartitionRefusesNewDials: a one-way cut refuses dials across it but
// leaves the reverse direction and other sites untouched.
func TestPartitionRefusesNewDials(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 1})
	ring := f.NetworkFor("ring", mem)
	edge := f.NetworkFor("edge", mem)
	cloud := f.NetworkFor("cloud", mem)

	for _, spec := range []struct {
		nw   *Network
		addr string
	}{{ring, "kv-0"}, {edge, "agent-0"}, {cloud, "cloud-0"}} {
		l, err := spec.nw.Listen(spec.addr)
		if err != nil {
			t.Fatal(err)
		}
		serveEcho(t, l)
	}

	f.Partition("edge", "ring")
	ctx := context.Background()
	if _, err := edge.Dial(ctx, "kv-0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial across cut = %v, want ErrInjected", err)
	}
	// Reverse direction still works (one-way cut).
	if conn, err := ring.Dial(ctx, "agent-0"); err != nil {
		t.Fatalf("reverse dial failed under one-way cut: %v", err)
	} else {
		conn.Close()
	}
	// Unrelated site pair unaffected.
	if conn, err := edge.Dial(ctx, "cloud-0"); err != nil {
		t.Fatalf("edge→cloud dial failed: %v", err)
	} else {
		conn.Close()
	}

	f.Heal("edge", "ring")
	conn, err := edge.Dial(ctx, "kv-0")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

// TestPartitionResetsEstablishedConns: connections dialed across a pair
// die when the pair is cut mid-stream.
func TestPartitionResetsEstablishedConns(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 1})
	ring := f.NetworkFor("ring", mem)
	edge := f.NetworkFor("edge", mem)

	l, err := ring.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)

	conn, err := edge.Dial(context.Background(), "kv-0")
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(conn, "pre-cut"); err != nil {
		t.Fatal(err)
	}
	f.Partition("edge", "ring")
	if _, err := conn.Write([]byte("post-cut")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on cut conn = %v, want ErrInjected", err)
	}
	// The error is sticky.
	if _, err := conn.Write([]byte("again")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write = %v, want sticky ErrInjected", err)
	}
}

// TestIsolateNode: node-level cuts refuse dials and reset existing
// connections regardless of site.
func TestIsolateNode(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 1})
	ring := f.NetworkFor("ring", mem)

	for _, addr := range []string{"kv-0", "kv-1"} {
		l, err := ring.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		serveEcho(t, l)
	}
	ctx := context.Background()
	conn0, err := ring.Dial(ctx, "kv-0")
	if err != nil {
		t.Fatal(err)
	}
	f.Isolate("kv-0")
	if _, err := ring.Dial(ctx, "kv-0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial to isolated node = %v, want ErrInjected", err)
	}
	if _, err := conn0.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write to isolated node = %v, want ErrInjected", err)
	}
	// Sibling node unaffected.
	if conn, err := ring.Dial(ctx, "kv-1"); err != nil {
		t.Fatalf("dial to healthy sibling: %v", err)
	} else {
		conn.Close()
	}
	f.Restore("kv-0")
	if conn, err := ring.Dial(ctx, "kv-0"); err != nil {
		t.Fatalf("dial after restore: %v", err)
	} else {
		conn.Close()
	}
}

// TestSeededDialRefusalsAreDeterministic: the same seed yields the same
// refusal pattern.
func TestSeededDialRefusalsAreDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		mem := transport.NewMemNetwork()
		f := NewFabric(Config{Seed: seed, DialFailProb: 0.5})
		nw := f.NetworkFor("s", mem)
		l, err := nw.Listen("svc")
		if err != nil {
			t.Fatal(err)
		}
		serveEcho(t, l)
		out := make([]bool, 40)
		for i := range out {
			conn, err := nw.Dial(context.Background(), "svc")
			out[i] = err == nil
			if err == nil {
				conn.Close()
			} else if !errors.Is(err, ErrInjected) {
				t.Fatalf("dial %d: %v, want ErrInjected", i, err)
			}
		}
		return out
	}
	a, b := pattern(99), pattern(99)
	refusals := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded refusal pattern diverges at dial %d", i)
		}
		if !a[i] {
			refusals++
		}
	}
	if refusals == 0 || refusals == len(a) {
		t.Fatalf("refusals = %d/%d, want a mixture at p=0.5", refusals, len(a))
	}
}

// TestMidStreamResetInjection: with ResetProb=1 the first write dies with
// an injected reset.
func TestMidStreamResetInjection(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 5, ResetProb: 1})
	nw := f.NetworkFor("s", mem)
	l, err := nw.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)
	conn, err := nw.Dial(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %v, want injected reset", err)
	}
}

// TestTransientStall: with StallProb=1 writes are delayed by StallFor but
// still succeed.
func TestTransientStall(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 5, StallProb: 1, StallFor: 50 * time.Millisecond})
	nw := f.NetworkFor("s", mem)
	l, err := nw.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)
	conn, err := nw.Dial(context.Background(), "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	if err := roundTrip(conn, "slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("stalled write completed in %v, want ≥ 50ms", d)
	}
}

// TestScheduleScriptsPartitionAndHeal: the Schedule API cuts and heals on
// a timeline.
func TestScheduleScriptsPartitionAndHeal(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 1})
	defer f.Close()
	ring := f.NetworkFor("ring", mem)
	edge := f.NetworkFor("edge", mem)
	l, err := ring.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)

	f.Schedule(30*time.Millisecond, func(f *Fabric) { f.PartitionBoth("edge", "ring") })
	f.Schedule(150*time.Millisecond, func(f *Fabric) { f.HealAll() })

	ctx := context.Background()
	if _, err := edge.Dial(ctx, "kv-0"); err != nil {
		t.Fatalf("dial before scripted cut: %v", err)
	}
	time.Sleep(70 * time.Millisecond)
	if !f.Cut("edge", "ring") {
		t.Fatal("scripted partition never fired")
	}
	if _, err := edge.Dial(ctx, "kv-0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial during scripted cut = %v, want ErrInjected", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := edge.Dial(ctx, "kv-0"); err == nil {
			conn.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("scripted heal never fired")
}

// TestComposesWithNetem: chaos over a netem-shaped view — delay shaping
// and partitioning both apply.
func TestComposesWithNetem(t *testing.T) {
	mem := transport.NewMemNetwork()
	topo := netem.NewTopology(netem.Link{Delay: 30 * time.Millisecond})
	chaos := NewFabric(Config{Seed: 1})

	ringNW := chaos.NetworkFor("ring", topo.NetworkFor("ring", mem))
	edgeNW := chaos.NetworkFor("edge", topo.NetworkFor("edge", mem))

	l, err := ringNW.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)

	ctx := context.Background()
	conn, err := edgeNW.Dial(ctx, "kv-0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := roundTrip(conn, "shaped"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("netem delay not applied under chaos wrapper: %v", d)
	}
	chaos.Partition("edge", "ring")
	if _, err := edgeNW.Dial(ctx, "kv-0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("partition not applied over netem: %v", err)
	}
	conn.Close()
}

// TestConfiguredLatencyDelaysWrites: a fixed Latency delays every write
// on dialed connections, so N sequential round trips cost at least
// N*Latency — the WAN shaping the restore benchmarks rely on.
func TestConfiguredLatencyDelaysWrites(t *testing.T) {
	mem := transport.NewMemNetwork()
	f := NewFabric(Config{Seed: 1, Latency: 10 * time.Millisecond})
	defer f.Close()
	ring := f.NetworkFor("ring", mem)
	edge := f.NetworkFor("edge", mem)

	l, err := ring.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	serveEcho(t, l)

	conn, err := edge.Dial(context.Background(), "kv-0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	const trips = 5
	for i := 0; i < trips; i++ {
		if err := roundTrip(conn, "ping"); err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
	}
	if got := time.Since(start); got < trips*10*time.Millisecond {
		t.Fatalf("5 round trips took %v, want >= %v of injected latency", got, trips*10*time.Millisecond)
	}
}
