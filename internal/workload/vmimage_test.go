package workload

import (
	"bytes"
	"testing"
)

func TestVMImageDeterministic(t *testing.T) {
	d := DefaultVMImageDataset(3)
	a := d.File(0, 0)
	b := d.File(0, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("same (source,index) differs")
	}
	if bytes.Equal(a, d.File(0, 1)) {
		t.Fatal("successive backups identical (mutations missing)")
	}
	wantLen := (d.BaseBlocks + d.AppBlocks + d.InstanceBlocks) * d.BlockSize
	if len(a) != wantLen {
		t.Fatalf("image size %d, want %d", len(a), wantLen)
	}
	if d.Name() != "vm-image" || d.Sources() != d.Nodes {
		t.Fatal("metadata wrong")
	}
}

// TestVMImageBackupChainDedup: consecutive backups of one node share all
// but the mutated fraction — the paper's 76-84% reduction regime.
func TestVMImageBackupChainDedup(t *testing.T) {
	d := DefaultVMImageDataset(5)
	var streams [][]byte
	for k := 0; k < 4; k++ {
		streams = append(streams, d.File(0, k))
	}
	total, unique := measureDedupRatio(t, streams, d.BlockSize)
	ratio := float64(total) / float64(unique)
	if ratio < 2.5 {
		t.Errorf("backup chain dedup ratio %.2f, want >= 2.5", ratio)
	}
}

// TestVMImageOSFamilySharing: same-family nodes share the base layer;
// different families share only the app pool.
func TestVMImageOSFamilySharing(t *testing.T) {
	d := DefaultVMImageDataset(7)
	// Nodes 0 and 2 share family 0; node 1 is family 1.
	_, uniqSame := measureDedupRatio(t, [][]byte{d.File(0, 0), d.File(2, 0)}, d.BlockSize)
	_, uniqDiff := measureDedupRatio(t, [][]byte{d.File(0, 0), d.File(1, 0)}, d.BlockSize)
	if uniqSame >= uniqDiff {
		t.Errorf("same-family union %d blocks >= cross-family %d: base layer not shared", uniqSame, uniqDiff)
	}
	// Cross-family must still share some app blocks.
	_, uniqSolo0 := measureDedupRatio(t, [][]byte{d.File(0, 0)}, d.BlockSize)
	_, uniqSolo1 := measureDedupRatio(t, [][]byte{d.File(1, 0)}, d.BlockSize)
	if uniqDiff >= uniqSolo0+uniqSolo1 {
		t.Error("no cross-family app-pool sharing")
	}
}
