// Package workload synthesizes the datasets of the EF-dedup evaluation.
// The paper's two IoT datasets (200 h of multi-participant accelerometer
// traces [16] and traffic-video frame sequences [9][17]) are not publicly
// redistributable, so this package generates statistical stand-ins whose
// similarity structure — the property every experiment depends on — is
// explicit and tunable:
//
//   - PoolDataset emits streams straight from the paper's chunk-pool
//     generative model, making testbed measurements directly comparable
//     to Theorem 1 predictions;
//   - AccelDataset emits walking-style accelerometer traces: each file
//     concatenates gait-cycle motifs (dominant frequency 1.92-2.8 Hz as
//     reported in the paper) drawn from shared per-group motif pools,
//     plus per-source unique noise;
//   - VideoDataset emits stationary-camera frame sequences: a shared
//     per-site background with a few moving blocks mutated per frame.
//
// All generators are deterministic in (source, file index), so every
// experiment is reproducible bit for bit.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"efdedup/internal/model"
)

// Dataset produces deterministic per-source file contents.
type Dataset interface {
	// Name identifies the dataset in experiment output.
	Name() string
	// File returns the content of the index-th file of the given source.
	// Contents are deterministic in (source, index).
	File(source, index int) []byte
	// Sources returns how many sources the dataset models.
	Sources() int
}

// splitmix64 advances a SplitMix64 state and returns the next value. All
// generators derive their randomness from it so outputs are stable across
// platforms and Go releases.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// seedFor mixes a label and coordinates into a stream seed.
func seedFor(base uint64, parts ...int) uint64 {
	s := base
	for _, p := range parts {
		s ^= splitmix64(&s) + uint64(p)*0x9E3779B97F4A7C15
	}
	return s
}

// fillRandom fills buf with deterministic bytes from seed.
func fillRandom(buf []byte, seed uint64) {
	state := seed
	i := 0
	for i+8 <= len(buf) {
		binary.LittleEndian.PutUint64(buf[i:], splitmix64(&state))
		i += 8
	}
	if i < len(buf) {
		var last [8]byte
		binary.LittleEndian.PutUint64(last[:], splitmix64(&state))
		copy(buf[i:], last[:len(buf)-i])
	}
}

// --- PoolDataset ---------------------------------------------------------

// PoolDataset draws chunk-aligned content directly from the paper's
// generative model: each chunk of a file picks a pool by the source's
// characteristic vector and an element uniformly inside it; leftover
// probability mass yields never-repeating chunks.
type PoolDataset struct {
	// System supplies pool sizes and characteristic vectors. Rates and
	// costs are ignored here.
	System *model.System
	// ChunkSize is the payload size per generated chunk; it should match
	// the agent's chunker for the model to predict measured ratios.
	ChunkSize int
	// ChunksPerFile sets the file length in chunks.
	ChunksPerFile int
	// Seed decorrelates different dataset instances.
	Seed int64
}

var _ Dataset = (*PoolDataset)(nil)

// NewPoolDataset validates and builds a pool-model dataset.
func NewPoolDataset(sys *model.System, chunkSize, chunksPerFile int, seed int64) (*PoolDataset, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if chunkSize <= 0 || chunksPerFile <= 0 {
		return nil, fmt.Errorf("workload: chunk size %d and chunks/file %d must be positive", chunkSize, chunksPerFile)
	}
	return &PoolDataset{System: sys, ChunkSize: chunkSize, ChunksPerFile: chunksPerFile, Seed: seed}, nil
}

// Name implements Dataset.
func (d *PoolDataset) Name() string { return "pool-model" }

// Sources implements Dataset.
func (d *PoolDataset) Sources() int { return len(d.System.Sources) }

// poolChunk materializes element idx of pool k: deterministic, so every
// source that draws (k, idx) produces identical bytes.
func (d *PoolDataset) poolChunk(k, idx int) []byte {
	buf := make([]byte, d.ChunkSize)
	fillRandom(buf, seedFor(uint64(d.Seed)^0xA5A5A5A5, k+1, idx))
	return buf
}

// File implements Dataset.
func (d *PoolDataset) File(source, index int) []byte {
	src := d.System.Sources[source]
	state := seedFor(uint64(d.Seed), source+1, index+1, 7)
	out := make([]byte, 0, d.ChunkSize*d.ChunksPerFile)
	for c := 0; c < d.ChunksPerFile; c++ {
		u := float64(splitmix64(&state)>>11) / float64(1<<53)
		pool := -1
		acc := 0.0
		for k, p := range src.Probs {
			acc += p
			if u < acc {
				pool = k
				break
			}
		}
		if pool < 0 {
			// Unique-noise chunk: seeded by position so it never repeats.
			buf := make([]byte, d.ChunkSize)
			fillRandom(buf, seedFor(uint64(d.Seed)^0x5C5C5C5C, source+1, index+1, c))
			out = append(out, buf...)
			continue
		}
		size := int(d.System.PoolSizes[pool])
		if size < 1 {
			size = 1
		}
		elem := int(splitmix64(&state) % uint64(size))
		out = append(out, d.poolChunk(pool, elem)...)
	}
	return out
}

// --- AccelDataset ----------------------------------------------------------

// AccelDataset synthesizes multi-participant walking accelerometer traces.
// Each participant group shares a motif pool of quantized gait cycles;
// a file concatenates motifs drawn from the group pool (with a shared
// common pool modeling cross-participant similarity) plus unique sensor
// noise segments.
type AccelDataset struct {
	// Participants is the number of sources (the paper used 5).
	Participants int
	// GroupMotifs is the per-participant motif pool size.
	GroupMotifs int
	// SharedMotifs is the cross-participant motif pool size.
	SharedMotifs int
	// SharedProb is the probability a segment comes from the shared
	// pool; UniqueProb is the probability it is pure noise.
	SharedProb float64
	UniqueProb float64
	// SegmentsPerFile sets file length.
	SegmentsPerFile int
	// SegmentBytes is the fixed byte size of every segment. Segments are
	// chunk-aligned units (a duperemove-style fixed chunker with a size
	// dividing SegmentBytes sees repeated motifs as identical chunks).
	SegmentBytes int
	// SampleRateHz and sample layout are fixed: int16 x/y/z triples.
	SampleRateHz int
	// Seed decorrelates dataset instances.
	Seed int64
}

var _ Dataset = (*AccelDataset)(nil)

// DefaultAccelDataset mirrors the paper's first dataset: 5 participants,
// walking-dominated motion.
func DefaultAccelDataset(seed int64) *AccelDataset {
	return &AccelDataset{
		Participants:    5,
		GroupMotifs:     80,
		SharedMotifs:    60,
		SharedProb:      0.3,
		UniqueProb:      0.05,
		SegmentsPerFile: 2000,
		SegmentBytes:    2048,
		SampleRateHz:    100,
		Seed:            seed,
	}
}

// Name implements Dataset.
func (d *AccelDataset) Name() string { return "iot-accel" }

// Sources implements Dataset.
func (d *AccelDataset) Sources() int { return d.Participants }

// gaitFreq returns the participant's dominant walking frequency in the
// paper's reported 1.92-2.8 Hz band.
func (d *AccelDataset) gaitFreq(participant int) float64 {
	state := seedFor(uint64(d.Seed)^0x17, participant+1)
	u := float64(splitmix64(&state)>>11) / float64(1<<53)
	return 1.92 + u*(2.8-1.92)
}

// motif renders one quantized gait cycle: a sinusoid burst with
// variant-specific amplitude, phase and harmonics, quantized to int16 so
// repeated cycles are bit-identical.
func (d *AccelDataset) motif(participant, variant int, shared bool) []byte {
	freq := d.gaitFreq(participant)
	seedBase := uint64(d.Seed) ^ 0x33
	var state uint64
	if shared {
		state = seedFor(seedBase, -1, variant)
		freq = 2.2 // shared motifs use a common canonical cadence
	} else {
		state = seedFor(seedBase, participant+1, variant)
	}
	cycle := int(float64(d.SampleRateHz) / freq)
	if cycle < 8 {
		cycle = 8
	}
	amp := 800 + float64(splitmix64(&state)%1200)
	phase := float64(splitmix64(&state)%628) / 100
	h2 := float64(splitmix64(&state)%400) / 1000
	// Render whole gait cycles and tile them into a fixed-size segment so
	// repeated motifs stay chunk-aligned in the byte stream.
	buf := make([]byte, d.SegmentBytes)
	samples := d.SegmentBytes / 6
	for s := 0; s < samples; s++ {
		t := float64(s%cycle) / float64(cycle) * 2 * math.Pi
		x := amp * (math.Sin(t+phase) + h2*math.Sin(2*t))
		y := amp * 0.6 * math.Cos(t+phase)
		z := 1000 + amp*0.3*math.Sin(t+phase/2)
		binary.LittleEndian.PutUint16(buf[s*6:], uint16(int16(x)))
		binary.LittleEndian.PutUint16(buf[s*6+2:], uint16(int16(y)))
		binary.LittleEndian.PutUint16(buf[s*6+4:], uint16(int16(z)))
	}
	return buf
}

// File implements Dataset.
func (d *AccelDataset) File(source, index int) []byte {
	state := seedFor(uint64(d.Seed), source+1, index+1)
	var out []byte
	for seg := 0; seg < d.SegmentsPerFile; seg++ {
		u := float64(splitmix64(&state)>>11) / float64(1<<53)
		switch {
		case u < d.UniqueProb:
			noise := make([]byte, d.SegmentBytes)
			fillRandom(noise, seedFor(uint64(d.Seed)^0x77, source+1, index+1, seg))
			out = append(out, noise...)
		case u < d.UniqueProb+d.SharedProb:
			variant := int(splitmix64(&state) % uint64(d.SharedMotifs))
			out = append(out, d.motif(source, variant, true)...)
		default:
			variant := int(splitmix64(&state) % uint64(d.GroupMotifs))
			out = append(out, d.motif(source, variant, false)...)
		}
	}
	return out
}

// --- VideoDataset ----------------------------------------------------------

// VideoDataset synthesizes traffic-camera frame sequences: each camera
// site has a static background; successive frames mutate a few moving
// blocks. Cameras sharing a site share backgrounds, which is where the
// cross-source redundancy lives.
type VideoDataset struct {
	// Cameras is the number of sources.
	Cameras int
	// SitesShared maps several cameras onto one scene: camera c films
	// scene c % SitesShared.
	SitesShared int
	// FrameBlocks and BlockSize fix the frame geometry (frame size =
	// FrameBlocks × BlockSize bytes).
	FrameBlocks int
	BlockSize   int
	// MovingBlocks is how many blocks change per frame.
	MovingBlocks int
	// FramesPerFile sets file length.
	FramesPerFile int
	// Seed decorrelates dataset instances.
	Seed int64
}

var _ Dataset = (*VideoDataset)(nil)

// DefaultVideoDataset mirrors the paper's second dataset: stationary
// traffic cameras with heavy inter-frame redundancy.
func DefaultVideoDataset(seed int64) *VideoDataset {
	return &VideoDataset{
		Cameras:       5,
		SitesShared:   2,
		FrameBlocks:   64,
		BlockSize:     4096,
		MovingBlocks:  4,
		FramesPerFile: 12,
		Seed:          seed,
	}
}

// Name implements Dataset.
func (d *VideoDataset) Name() string { return "traffic-video" }

// Sources implements Dataset.
func (d *VideoDataset) Sources() int { return d.Cameras }

// background returns block b of the scene's static background.
func (d *VideoDataset) background(scene, b int) []byte {
	buf := make([]byte, d.BlockSize)
	fillRandom(buf, seedFor(uint64(d.Seed)^0xBB, scene+1, b))
	return buf
}

// File implements Dataset.
func (d *VideoDataset) File(source, index int) []byte {
	scene := source % d.SitesShared
	state := seedFor(uint64(d.Seed), source+1, index+1, 3)
	out := make([]byte, 0, d.FramesPerFile*d.FrameBlocks*d.BlockSize)
	for f := 0; f < d.FramesPerFile; f++ {
		moving := make(map[int]bool, d.MovingBlocks)
		for len(moving) < d.MovingBlocks && len(moving) < d.FrameBlocks {
			moving[int(splitmix64(&state)%uint64(d.FrameBlocks))] = true
		}
		for b := 0; b < d.FrameBlocks; b++ {
			if moving[b] {
				blk := make([]byte, d.BlockSize)
				fillRandom(blk, seedFor(uint64(d.Seed)^0xCC, source+1, index+1, f, b))
				out = append(out, blk...)
				continue
			}
			out = append(out, d.background(scene, b)...)
		}
	}
	return out
}
