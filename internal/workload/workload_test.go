package workload

import (
	"bytes"
	"testing"

	"efdedup/internal/chunk"
	"efdedup/internal/model"
)

func poolSystem() *model.System {
	return &model.System{
		PoolSizes: []float64{300, 150},
		Sources: []model.Source{
			{ID: 0, Rate: 10, Probs: []float64{0.6, 0.3}}, // 0.1 unique
			{ID: 1, Rate: 10, Probs: []float64{0.6, 0.3}},
			{ID: 2, Rate: 10, Probs: []float64{0.1, 0.8}},
		},
		T:     10,
		Gamma: 1,
	}
}

// measureDedupRatio chunks the given byte streams with the given size and
// returns total/unique chunk counts.
func measureDedupRatio(t *testing.T, streams [][]byte, chunkSize int) (total, unique int) {
	t.Helper()
	chunker, err := chunk.NewFixedChunker(chunkSize)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[chunk.ID]bool)
	for _, s := range streams {
		chunks, err := chunk.SplitBytes(chunker, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range chunks {
			total++
			if !seen[c.ID] {
				seen[c.ID] = true
				unique++
			}
		}
	}
	return total, unique
}

func TestDatasetsDeterministic(t *testing.T) {
	sys := poolSystem()
	pd, err := NewPoolDataset(sys, 1024, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	datasets := []Dataset{
		pd,
		DefaultAccelDataset(7),
		DefaultVideoDataset(7),
	}
	for _, d := range datasets {
		t.Run(d.Name(), func(t *testing.T) {
			a := d.File(0, 0)
			b := d.File(0, 0)
			if !bytes.Equal(a, b) {
				t.Fatal("same (source,index) produced different content")
			}
			c := d.File(0, 1)
			if bytes.Equal(a, c) {
				t.Fatal("different file indexes produced identical content")
			}
			if d.Sources() <= 0 {
				t.Fatal("no sources")
			}
			if len(a) == 0 {
				t.Fatal("empty file")
			}
		})
	}
}

func TestNewPoolDatasetValidation(t *testing.T) {
	sys := poolSystem()
	if _, err := NewPoolDataset(sys, 0, 10, 1); err == nil {
		t.Error("zero chunk size accepted")
	}
	if _, err := NewPoolDataset(sys, 10, 0, 1); err == nil {
		t.Error("zero chunks/file accepted")
	}
	bad := poolSystem()
	bad.T = -1
	if _, err := NewPoolDataset(bad, 10, 10, 1); err == nil {
		t.Error("invalid system accepted")
	}
}

// TestPoolDatasetMatchesTheorem1 is the linchpin: measured unique chunks
// on generated data must match the analytic model within Monte Carlo
// noise, which is what makes testbed experiments comparable to model
// predictions.
func TestPoolDatasetMatchesTheorem1(t *testing.T) {
	sys := poolSystem()
	const chunkSize = 512
	chunksPerFile := int(sys.Sources[0].Rate * sys.T) // R·T chunks per window
	d, err := NewPoolDataset(sys, chunkSize, chunksPerFile, 99)
	if err != nil {
		t.Fatal(err)
	}

	// One "window" per source: file index 0.
	for _, set := range [][]int{{0}, {0, 1}, {0, 2}, {0, 1, 2}} {
		var streams [][]byte
		for _, s := range set {
			streams = append(streams, d.File(s, 0))
		}
		_, unique := measureDedupRatio(t, streams, chunkSize)
		want := sys.UniqueChunks(set)
		diff := (float64(unique) - want) / want
		if diff < -0.12 || diff > 0.12 {
			t.Errorf("set %v: measured %d unique chunks, model predicts %.1f (%.1f%% off)",
				set, unique, want, diff*100)
		}
	}
}

// TestPoolDatasetCorrelationStructure: identically-distributed sources
// share many chunks; near-disjoint sources share few.
func TestPoolDatasetCorrelationStructure(t *testing.T) {
	sys := poolSystem()
	d, err := NewPoolDataset(sys, 512, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	overlap := func(a, b int) float64 {
		chunker, _ := chunk.NewFixedChunker(512)
		seen := make(map[chunk.ID]bool)
		ca, _ := chunk.SplitBytes(chunker, d.File(a, 0))
		for _, c := range ca {
			seen[c.ID] = true
		}
		cb, _ := chunk.SplitBytes(chunker, d.File(b, 0))
		shared := 0
		for _, c := range cb {
			if seen[c.ID] {
				shared++
			}
		}
		return float64(shared) / float64(len(cb))
	}
	same := overlap(0, 1)      // identical characteristic vectors
	different := overlap(0, 2) // near-disjoint vectors
	if same <= different {
		t.Errorf("correlated overlap %.3f not above uncorrelated %.3f", same, different)
	}
	if same < 0.2 {
		t.Errorf("correlated sources share only %.1f%% of chunks", same*100)
	}
}

func TestAccelDatasetRedundancyStructure(t *testing.T) {
	d := DefaultAccelDataset(11)
	// Within one source, motif reuse must produce substantial dedup.
	f1, f2 := d.File(0, 0), d.File(0, 1)
	total, unique := measureDedupRatio(t, [][]byte{f1, f2}, d.SegmentBytes)
	ratio := float64(total) / float64(unique)
	if ratio < 1.3 {
		t.Errorf("accel intra-source dedup ratio %.2f, want >= 1.3 (motif reuse)", ratio)
	}

	// Cross-participant: shared motif pool yields some but less overlap.
	_, uniqueAcross := measureDedupRatio(t, [][]byte{d.File(0, 0), d.File(1, 0)}, d.SegmentBytes)
	_, uniqueSolo0 := measureDedupRatio(t, [][]byte{d.File(0, 0)}, d.SegmentBytes)
	_, uniqueSolo1 := measureDedupRatio(t, [][]byte{d.File(1, 0)}, d.SegmentBytes)
	if uniqueAcross >= uniqueSolo0+uniqueSolo1 {
		t.Error("no cross-participant redundancy despite shared motif pool")
	}
}

func TestVideoDatasetRedundancyStructure(t *testing.T) {
	d := DefaultVideoDataset(13)
	// Consecutive frames share the background: strong intra-file dedup.
	total, unique := measureDedupRatio(t, [][]byte{d.File(0, 0)}, d.BlockSize)
	ratio := float64(total) / float64(unique)
	if ratio < 3 {
		t.Errorf("video intra-file dedup ratio %.2f, want >= 3 (static background)", ratio)
	}

	// Cameras 0 and 2 share scene 0; cameras 0 and 1 do not.
	_, uniqSameScene := measureDedupRatio(t, [][]byte{d.File(0, 0), d.File(2, 0)}, d.BlockSize)
	_, uniqDiffScene := measureDedupRatio(t, [][]byte{d.File(0, 0), d.File(1, 0)}, d.BlockSize)
	if uniqSameScene >= uniqDiffScene {
		t.Errorf("same-scene union %d unique blocks, different-scene %d: expected scene sharing to help",
			uniqSameScene, uniqDiffScene)
	}
}

func TestAccelGaitFrequencyInBand(t *testing.T) {
	d := DefaultAccelDataset(3)
	for p := 0; p < d.Participants; p++ {
		f := d.gaitFreq(p)
		if f < 1.92 || f > 2.8 {
			t.Errorf("participant %d gait frequency %.3f outside the paper's 1.92-2.8 Hz band", p, f)
		}
	}
}

func TestFillRandomDeterministicAndCovering(t *testing.T) {
	a := make([]byte, 37) // odd length exercises the tail path
	b := make([]byte, 37)
	fillRandom(a, 5)
	fillRandom(b, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("fillRandom not deterministic")
	}
	fillRandom(b, 6)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical bytes")
	}
	allZero := true
	for _, x := range a[30:] {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("tail bytes left unfilled")
	}
}
