package workload

// VMImageDataset synthesizes VM/system backup images — the paper's other
// motivating edge workload ("VM/system backup ... car multimedia system
// images", Sec. I-II, with dedup ratios of 76-84 % reported for such
// data). An image is a stack of block-aligned layers:
//
//   - a base OS layer shared by every node running the same OS family
//     (pool C_1/C_2 in the paper's Windows/Linux example);
//   - application layers drawn from a common package pool (the paper's
//     "chunks shared by the two systems due to common applications");
//   - an instance-specific layer (configuration, logs) that never
//     repeats.
//
// Successive backups (file indices) of one node mutate a small fraction
// of blocks, so intra-node backup chains deduplicate heavily — the
// classic backup workload shape.
type VMImageDataset struct {
	// Nodes is the number of edge nodes (VMs).
	Nodes int
	// OSFamilies is how many distinct base images exist; node i runs
	// family i % OSFamilies.
	OSFamilies int
	// BaseBlocks is the base layer size in blocks.
	BaseBlocks int
	// AppPool is the number of distinct application blocks in the shared
	// package pool; AppBlocks of them appear in each image.
	AppPool   int
	AppBlocks int
	// InstanceBlocks is the per-image unique layer size.
	InstanceBlocks int
	// BlockSize is the block (and natural chunk) size in bytes.
	BlockSize int
	// MutateFrac is the fraction of base+app blocks a successive backup
	// overwrites with fresh content.
	MutateFrac float64
	// Seed decorrelates dataset instances.
	Seed int64
}

var _ Dataset = (*VMImageDataset)(nil)

// DefaultVMImageDataset mirrors a small fleet: two OS families, a shared
// package pool, ~4 MiB images.
func DefaultVMImageDataset(seed int64) *VMImageDataset {
	return &VMImageDataset{
		Nodes:          8,
		OSFamilies:     2,
		BaseBlocks:     192,
		AppPool:        512,
		AppBlocks:      48,
		InstanceBlocks: 16,
		BlockSize:      4096,
		MutateFrac:     0.03,
		Seed:           seed,
	}
}

// Name implements Dataset.
func (d *VMImageDataset) Name() string { return "vm-image" }

// Sources implements Dataset.
func (d *VMImageDataset) Sources() int { return d.Nodes }

// baseBlock materializes block b of an OS family's base image.
func (d *VMImageDataset) baseBlock(family, b int) []byte {
	buf := make([]byte, d.BlockSize)
	fillRandom(buf, seedFor(uint64(d.Seed)^xOSBase, family+1, b))
	return buf
}

// appBlock materializes element idx of the shared application pool.
func (d *VMImageDataset) appBlock(idx int) []byte {
	buf := make([]byte, d.BlockSize)
	fillRandom(buf, seedFor(uint64(d.Seed)^0xA99B10C, idx))
	return buf
}

// File implements Dataset: the index-th backup image of node source.
func (d *VMImageDataset) File(source, index int) []byte {
	family := source % d.OSFamilies
	// The node's application selection is stable across backups.
	appState := seedFor(uint64(d.Seed)^0x4151, source+1)
	apps := make([]int, d.AppBlocks)
	for i := range apps {
		apps[i] = int(splitmix64(&appState) % uint64(d.AppPool))
	}
	// Mutations accumulate per backup index: backup k mutates blocks
	// chosen from a per-(source,index) stream, so consecutive backups
	// share all but MutateFrac of their content.
	totalShared := d.BaseBlocks + d.AppBlocks
	mutated := make(map[int]uint64) // block position -> content seed
	for k := 1; k <= index; k++ {
		mutState := seedFor(uint64(d.Seed)^0x3177A, source+1, k)
		count := int(float64(totalShared) * d.MutateFrac)
		for m := 0; m < count; m++ {
			pos := int(splitmix64(&mutState) % uint64(totalShared))
			mutated[pos] = seedFor(uint64(d.Seed)^0xDE1, source+1, k, pos)
		}
	}

	out := make([]byte, 0, (totalShared+d.InstanceBlocks)*d.BlockSize)
	for pos := 0; pos < totalShared; pos++ {
		if seed, ok := mutated[pos]; ok {
			blk := make([]byte, d.BlockSize)
			fillRandom(blk, seed)
			out = append(out, blk...)
			continue
		}
		if pos < d.BaseBlocks {
			out = append(out, d.baseBlock(family, pos)...)
		} else {
			out = append(out, d.appBlock(apps[pos-d.BaseBlocks])...)
		}
	}
	// Instance-unique tail (never repeats across nodes or backups).
	tail := make([]byte, d.InstanceBlocks*d.BlockSize)
	fillRandom(tail, seedFor(uint64(d.Seed)^0x7A11, source+1, index+1))
	out = append(out, tail...)
	return out
}

// xOSBase tags base-layer seeds in the mixing above.
const xOSBase = 0x05BA5E
