// Package erasure implements Reed-Solomon erasure coding over GF(2⁸) —
// the paper's future-work direction "to make the data more reliable and
// save more storage space, we intend to apply erasure code to store data
// replicas" (Sec. VII, refs [28][29]).
//
// A Codec splits a chunk into k data shards and computes m parity shards;
// any k of the k+m shards reconstruct the chunk. Compared with the
// paper's replication-factor-γ copies, erasure coding stores
// (k+m)/k× the data instead of γ× for comparable loss tolerance.
//
// The implementation is a systematic Vandermonde Reed-Solomon code:
// encoding multiplies the data by rows of a Vandermonde-derived matrix;
// decoding inverts the surviving rows. Everything is stdlib-only.
package erasure

import (
	"errors"
	"fmt"
)

// GF(2⁸) arithmetic with the AES polynomial x⁸+x⁴+x³+x+1 (0x11B).
const fieldPoly = 0x11B

// gfTables holds exp/log tables for fast multiplication.
type gfTables struct {
	exp [512]byte
	log [256]byte
}

// newGFTables builds the exp/log tables over generator 3 (0x03). Note 2
// is NOT a generator of the AES field (its multiplicative order is 51),
// so the tables must step by x·3 = (x<<1) ⊕ x.
func newGFTables() *gfTables {
	t := &gfTables{}
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.log[x] = byte(i)
		x = (x << 1) ^ x // multiply by the generator 3
		if x&0x100 != 0 {
			x ^= fieldPoly
		}
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

var tables = newGFTables()

// gfMul multiplies in GF(2⁸).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+int(tables.log[b])]
}

// gfDiv divides in GF(2⁸); b must be non-zero.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return tables.exp[int(tables.log[a])+255-int(tables.log[b])]
}

// gfInv inverts in GF(2⁸); a must be non-zero.
func gfInv(a byte) byte { return tables.exp[255-int(tables.log[a])] }

// gfPow raises a to the n-th power.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return tables.exp[(int(tables.log[a])*n)%255]
}

// Codec encodes chunks into k data + m parity shards.
type Codec struct {
	k, m int
	// encodeMatrix is (k+m)×k: identity on top (systematic), parity rows
	// below.
	encodeMatrix [][]byte
}

// New builds a codec with k data shards and m parity shards. k+m must not
// exceed 255 (distinct non-zero field points).
func New(k, m int) (*Codec, error) {
	if k <= 0 || m < 0 {
		return nil, fmt.Errorf("erasure: k=%d, m=%d must be positive", k, m)
	}
	if k+m > 255 {
		return nil, fmt.Errorf("erasure: k+m=%d exceeds field size", k+m)
	}
	// Build a (k+m)×k Vandermonde matrix, then normalize its top k×k
	// block to the identity (systematic form) by column operations.
	rows := k + m
	vm := make([][]byte, rows)
	for r := 0; r < rows; r++ {
		vm[r] = make([]byte, k)
		for c := 0; c < k; c++ {
			vm[r][c] = gfPow(byte(r+1), c)
		}
	}
	// Gaussian elimination on the top block, applying the same column
	// operations to all rows. The Vandermonde top block is invertible
	// because the evaluation points are distinct.
	for col := 0; col < k; col++ {
		// Find pivot in row=col of the top block.
		if vm[col][col] == 0 {
			// Swap with a later column that has a non-zero entry.
			swapped := false
			for c2 := col + 1; c2 < k; c2++ {
				if vm[col][c2] != 0 {
					for r := 0; r < rows; r++ {
						vm[r][col], vm[r][c2] = vm[r][c2], vm[r][col]
					}
					swapped = true
					break
				}
			}
			if !swapped {
				return nil, errors.New("erasure: singular Vandermonde block (unreachable)")
			}
		}
		inv := gfInv(vm[col][col])
		// Scale the column so the pivot is 1.
		for r := 0; r < rows; r++ {
			vm[r][col] = gfMul(vm[r][col], inv)
		}
		// Eliminate the pivot row's other entries.
		for c2 := 0; c2 < k; c2++ {
			if c2 == col || vm[col][c2] == 0 {
				continue
			}
			factor := vm[col][c2]
			for r := 0; r < rows; r++ {
				vm[r][c2] ^= gfMul(factor, vm[r][col])
			}
		}
	}
	return &Codec{k: k, m: m, encodeMatrix: vm}, nil
}

// DataShards returns k.
func (c *Codec) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Codec) ParityShards() int { return c.m }

// Split encodes data into k+m shards. The chunk is padded to a multiple of
// k; the original length must be carried out of band (Join takes it).
func (c *Codec) Split(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, errors.New("erasure: empty input")
	}
	shardLen := (len(data) + c.k - 1) / c.k
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			end := start + shardLen
			if end > len(data) {
				end = len(data)
			}
			copy(shards[i], data[start:end])
		}
	}
	for p := 0; p < c.m; p++ {
		row := c.encodeMatrix[c.k+p]
		shard := make([]byte, shardLen)
		for i := 0; i < c.k; i++ {
			coef := row[i]
			if coef == 0 {
				continue
			}
			src := shards[i]
			for b := 0; b < shardLen; b++ {
				shard[b] ^= gfMul(coef, src[b])
			}
		}
		shards[c.k+p] = shard
	}
	return shards, nil
}

// Join reconstructs the original chunk of the given length from any k
// surviving shards. shards must have length k+m with missing entries nil;
// all present shards must have equal length.
func (c *Codec) Join(shards [][]byte, length int) ([]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.k+c.m)
	}
	if length <= 0 {
		return nil, errors.New("erasure: non-positive length")
	}
	// Collect k surviving shards and their encode-matrix rows.
	var rows [][]byte
	var data [][]byte
	shardLen := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if shardLen == -1 {
			shardLen = len(s)
		} else if len(s) != shardLen {
			return nil, errors.New("erasure: shard length mismatch")
		}
		if len(rows) < c.k {
			rows = append(rows, c.encodeMatrix[i])
			data = append(data, s)
		}
	}
	if len(rows) < c.k {
		return nil, fmt.Errorf("erasure: only %d of %d required shards survive", len(rows), c.k)
	}
	if shardLen*c.k < length {
		return nil, fmt.Errorf("erasure: shards cover %d bytes, need %d", shardLen*c.k, length)
	}
	// Invert the k×k matrix of surviving rows.
	inv, err := invertMatrix(rows, c.k)
	if err != nil {
		return nil, err
	}
	// dataShard[i] = Σ_j inv[i][j]·survivor[j].
	out := make([]byte, 0, length)
	buf := make([]byte, shardLen)
	for i := 0; i < c.k && len(out) < length; i++ {
		for b := range buf {
			buf[b] = 0
		}
		for j := 0; j < c.k; j++ {
			coef := inv[i][j]
			if coef == 0 {
				continue
			}
			src := data[j]
			for b := 0; b < shardLen; b++ {
				buf[b] ^= gfMul(coef, src[b])
			}
		}
		need := length - len(out)
		if need > shardLen {
			need = shardLen
		}
		out = append(out, buf[:need]...)
	}
	return out, nil
}

// invertMatrix returns the inverse of the k×k matrix given as row slices.
func invertMatrix(rows [][]byte, k int) ([][]byte, error) {
	// Build augmented [A | I].
	aug := make([][]byte, k)
	for i := 0; i < k; i++ {
		aug[i] = make([]byte, 2*k)
		copy(aug[i], rows[i][:k])
		aug[i][k+i] = 1
	}
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := -1
		for r := col; r < k; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("erasure: singular survivor matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := gfInv(aug[col][col])
		for c2 := 0; c2 < 2*k; c2++ {
			aug[col][c2] = gfMul(aug[col][c2], inv)
		}
		for r := 0; r < k; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			factor := aug[r][col]
			for c2 := 0; c2 < 2*k; c2++ {
				aug[r][c2] ^= gfMul(factor, aug[col][c2])
			}
		}
	}
	out := make([][]byte, k)
	for i := range out {
		out[i] = aug[i][k:]
	}
	return out, nil
}

// Overhead returns the storage expansion factor (k+m)/k, for comparing
// against replication's γ.
func (c *Codec) Overhead() float64 {
	return float64(c.k+c.m) / float64(c.k)
}

// gfDivUsed keeps gfDiv referenced for completeness of the field API.
var _ = gfDiv
