package erasure

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(3, -1); err == nil {
		t.Error("negative m accepted")
	}
	if _, err := New(200, 100); err == nil {
		t.Error("k+m > 255 accepted")
	}
}

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverses and associativity on sampled triples.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a := byte(rng.Intn(255) + 1)
		b := byte(rng.Intn(255) + 1)
		c := byte(rng.Intn(256))
		if gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("a·a⁻¹ ≠ 1 for a=%d", a)
		}
		if gfDiv(gfMul(a, b), b) != a {
			t.Fatalf("(a·b)/b ≠ a for a=%d b=%d", a, b)
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("associativity fails for %d,%d,%d", a, b, c)
		}
		// Distributivity over XOR (field addition).
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
	}
	if gfPow(3, 0) != 1 || gfPow(0, 5) != 0 {
		t.Error("gfPow edge cases wrong")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	codec, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, size := range []int{1, 7, 64, 1000, 8192, 10001} {
		data := make([]byte, size)
		rng.Read(data)
		shards, err := codec.Split(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != 6 {
			t.Fatalf("got %d shards, want 6", len(shards))
		}
		back, err := codec.Join(shards, size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("size %d: full-shard reconstruction differs", size)
		}
	}
}

// TestReconstructionFromAnyKShards drops every possible loss pattern of up
// to m shards and verifies recovery.
func TestReconstructionFromAnyKShards(t *testing.T) {
	const k, m = 4, 2
	codec, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 5000)
	rng.Read(data)
	shards, err := codec.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	total := k + m
	// Every pair of lost shards.
	for a := 0; a < total; a++ {
		for b := a + 1; b < total; b++ {
			damaged := make([][]byte, total)
			for i := range shards {
				if i != a && i != b {
					damaged[i] = shards[i]
				}
			}
			back, err := codec.Join(damaged, len(data))
			if err != nil {
				t.Fatalf("lose {%d,%d}: %v", a, b, err)
			}
			if !bytes.Equal(back, data) {
				t.Fatalf("lose {%d,%d}: reconstruction differs", a, b)
			}
		}
	}
}

func TestTooManyLosses(t *testing.T) {
	codec, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("some chunk content to protect")
	shards, err := codec.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil // 3 losses > m=2
	if _, err := codec.Join(shards, len(data)); err == nil {
		t.Fatal("reconstruction succeeded with too few shards")
	}
}

func TestJoinValidation(t *testing.T) {
	codec, err := New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := codec.Join(make([][]byte, 2), 10); err == nil {
		t.Error("wrong shard count accepted")
	}
	shards, _ := codec.Split([]byte("abcdef"))
	if _, err := codec.Join(shards, 0); err == nil {
		t.Error("zero length accepted")
	}
	shards[1] = shards[1][:1] // length mismatch
	if _, err := codec.Join(shards, 6); err == nil {
		t.Error("mismatched shard lengths accepted")
	}
}

func TestOverheadVsReplication(t *testing.T) {
	// RS(4,2) tolerates 2 losses at 1.5x storage; replication needs 3x.
	codec, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := codec.Overhead(); got != 1.5 {
		t.Fatalf("Overhead = %v, want 1.5", got)
	}
	if codec.DataShards() != 4 || codec.ParityShards() != 2 {
		t.Fatal("shard counts wrong")
	}
}

// TestPropertyRoundTripWithRandomLosses fuzzes sizes and loss patterns.
func TestPropertyRoundTripWithRandomLosses(t *testing.T) {
	codec, err := New(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(4000)
		data := make([]byte, size)
		rng.Read(data)
		shards, err := codec.Split(data)
		if err != nil {
			return false
		}
		// Drop up to m random shards.
		losses := rng.Intn(codec.ParityShards() + 1)
		for l := 0; l < losses; l++ {
			shards[rng.Intn(len(shards))] = nil
		}
		back, err := codec.Join(shards, size)
		if err != nil {
			return false
		}
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
