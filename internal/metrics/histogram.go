package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: log-linear ("HDR-lite"), the same shape the Go
// runtime uses for its scheduler latency histograms. Values below 2^subBits
// get exact unit buckets; above that, each power-of-two octave is split
// into 2^subBits linear sub-buckets, giving a worst-case relative
// quantile error of 2^-subBits (≈6% at subBits=4) over the full int64
// range with a fixed ~8 KiB of counters and lock-free recording.
const (
	subBits    = 4
	subBuckets = 1 << subBits // 16
	// numBuckets covers values up to 2^63-1: 16 exact unit buckets plus
	// 16 sub-buckets for each octave 4..62.
	numBuckets = subBuckets + (63-subBits)*subBuckets
)

// Histogram records int64 observations into log-linear buckets. It is
// lock-free on the record path and safe for concurrent use. The zero
// value is NOT usable; obtain instances from a Registry.
type Histogram struct {
	// scale multiplies raw observed values on export: 1 for plain value
	// histograms, 1e-9 for duration histograms recording nanoseconds and
	// exporting seconds.
	scale float64

	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func newHistogram(scale float64) *Histogram {
	h := &Histogram{scale: scale}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	e := bits.Len64(u) - 1 // e >= subBits
	sub := int((u >> (uint(e) - subBits)) & (subBuckets - 1))
	return subBuckets + (e-subBits)*subBuckets + sub
}

// bucketUpper returns the inclusive upper bound of bucket i (unscaled).
func bucketUpper(i int) float64 {
	if i < subBuckets {
		return float64(i)
	}
	oct := (i-subBuckets)/subBuckets + subBits
	sub := (i - subBuckets) % subBuckets
	width := math.Exp2(float64(oct - subBits))
	return math.Exp2(float64(oct)) + float64(sub+1)*width - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration (use with DurationHistogram).
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the elapsed time from start to now.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Scale returns the export multiplier (1 for value histograms, 1e-9 for
// duration histograms).
func (h *Histogram) Scale() float64 { return h.scale }

// HistSnapshot is a consistent-enough point-in-time view of a histogram.
// All float fields are scaled (seconds for duration histograms).
type HistSnapshot struct {
	Count              int64
	Sum                float64
	Min, Max, Mean     float64
	P50, P90, P95, P99 float64
	// Buckets holds (upper bound, cumulative count) pairs for every
	// non-empty bucket, in increasing bound order (Prometheus shape).
	Buckets []BucketCount
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	Upper      float64 // scaled inclusive upper bound
	Cumulative int64
}

// Snapshot reads the histogram. Concurrent observations may tear between
// fields (count vs sum), which is acceptable for monitoring output.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [numBuckets]int64
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	s := HistSnapshot{Count: total, Sum: float64(h.sum.Load()) * h.scale}
	if total == 0 {
		return s
	}
	s.Min = float64(h.min.Load()) * h.scale
	s.Max = float64(h.max.Load()) * h.scale
	s.Mean = s.Sum / float64(total)
	var cum int64
	q := []struct {
		q   float64
		dst *float64
	}{{0.50, &s.P50}, {0.90, &s.P90}, {0.95, &s.P95}, {0.99, &s.P99}}
	qi := 0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		s.Buckets = append(s.Buckets, BucketCount{Upper: bucketUpper(i) * h.scale, Cumulative: cum})
		for qi < len(q) && float64(cum) >= q[qi].q*float64(total) {
			*q[qi].dst = bucketUpper(i) * h.scale
			qi++
		}
	}
	// Clamp quantile estimates to the observed range: bucket upper bounds
	// can exceed the true max within the last octave.
	for _, e := range q {
		if *e.dst > s.Max {
			*e.dst = s.Max
		}
		if *e.dst < s.Min {
			*e.dst = s.Min
		}
	}
	return s
}

// Quantile returns the q-quantile estimate (scaled), 0 when empty.
func (h *Histogram) Quantile(qv float64) float64 {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return 0
	}
	switch {
	case qv <= 0:
		return snap.Min
	case qv >= 1:
		return snap.Max
	}
	target := qv * float64(snap.Count)
	for _, b := range snap.Buckets {
		if float64(b.Cumulative) >= target {
			v := b.Upper
			if v > snap.Max {
				v = snap.Max
			}
			if v < snap.Min {
				v = snap.Min
			}
			return v
		}
	}
	return snap.Max
}

// Span times one region of code into a duration histogram:
//
//	sp := metrics.StartTimer(h)
//	defer sp.End()
//
// Span is a value type; starting one allocates nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartTimer opens a span recording into h on End.
func StartTimer(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// StartSpan opens a span recording into the named duration histogram of r.
// Hot paths should pre-resolve the histogram and use StartTimer instead.
func (r *Registry) StartSpan(name string, labels ...string) Span {
	//lint:ignore metricname registry-internal forwarding; the constant-name rule applies at StartSpan call sites
	return StartTimer(r.DurationHistogram(name, labels...))
}

// End closes the span, records its duration and returns it. End on a
// zero Span is a no-op.
func (s Span) End() time.Duration {
	if s.h == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.ObserveDuration(d)
	return d
}
