package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Error("same name returned a different counter instance")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil instruments not inert")
	}
	var sp Span
	if sp.End() != 0 {
		t.Error("zero Span.End not 0")
	}
}

func TestKeyLabelsSortedAndEscaped(t *testing.T) {
	a := Key("m", "b", "2", "a", "1")
	b := Key("m", "a", "1", "b", "2")
	if a != b {
		t.Errorf("label order changed identity: %q vs %q", a, b)
	}
	if want := `m{a="1",b="2"}`; a != want {
		t.Errorf("key = %q, want %q", a, want)
	}
	if got := Key("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Errorf("escaping: %q", got)
	}
	if got := Key("m"); got != "m" {
		t.Errorf("no labels: %q", got)
	}
}

func TestLabeledMetricsAreDistinct(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc_total", "method", "get").Add(2)
	r.Counter("rpc_total", "method", "put").Add(3)
	if got := r.Counter("rpc_total", "method", "get").Value(); got != 2 {
		t.Errorf("get counter = %d, want 2", got)
	}
	if got := r.Counter("rpc_total", "method", "put").Value(); got != 3 {
		t.Errorf("put counter = %d, want 3", got)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("live", func() float64 { return v })
	v = 42
	found := false
	for _, s := range r.Snapshots() {
		if s.Key == "live" {
			found = true
			if s.Value != 42 {
				t.Errorf("gauge func value = %g, want 42", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("gauge func missing from snapshots")
	}
	// Re-registration replaces.
	r.GaugeFunc("live", func() float64 { return 7 })
	for _, s := range r.Snapshots() {
		if s.Key == "live" && s.Value != 7 {
			t.Errorf("replaced gauge func value = %g, want 7", s.Value)
		}
	}
}

func TestSpanRecordsIntoHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("stage_seconds")
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Errorf("span duration %v < slept 2ms", d)
	}
	snap := r.DurationHistogram("stage_seconds").Snapshot()
	if snap.Count != 1 {
		t.Fatalf("histogram count = %d, want 1", snap.Count)
	}
	if snap.Max < 0.002 {
		t.Errorf("recorded %gs, want >= 2ms", snap.Max)
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h").Observe(int64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshots()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() returned different registries")
	}
}

func TestStringDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Histogram("b").Observe(3)
	s := r.String()
	if !strings.Contains(s, "a_total: 1") || !strings.Contains(s, "b: count=1") {
		t.Errorf("dump missing entries:\n%s", s)
	}
}
