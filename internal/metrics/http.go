package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters as *_total series, gauges as plain
// series, histograms as cumulative le-bucketed series with _sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshots()
	// Group by base name so each family gets exactly one TYPE line.
	typed := make(map[string]bool)
	writeType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	// Snapshots are sorted by key, so families come out contiguous.
	for _, s := range snaps {
		base := baseName(s.Key)
		switch s.Kind {
		case "counter":
			writeType(base, "counter")
			fmt.Fprintf(w, "%s %s\n", s.Key, formatFloat(s.Value))
		case "gauge":
			writeType(base, "gauge")
			fmt.Fprintf(w, "%s %s\n", s.Key, formatFloat(s.Value))
		case "histogram":
			writeType(base, "histogram")
			name, labels := splitKey(s.Key)
			for _, b := range s.Hist.Buckets {
				fmt.Fprintf(w, "%s %d\n",
					withLabels(name+"_bucket", labels, fmt.Sprintf(`le="%s"`, formatFloat(b.Upper))),
					b.Cumulative)
			}
			fmt.Fprintf(w, "%s %d\n", withLabels(name+"_bucket", labels, `le="+Inf"`), s.Hist.Count)
			fmt.Fprintf(w, "%s %s\n", withLabels(name+"_sum", labels, ""), formatFloat(s.Hist.Sum))
			fmt.Fprintf(w, "%s %d\n", withLabels(name+"_count", labels, ""), s.Hist.Count)
		}
	}
	return nil
}

// splitKey separates a key into base name and the inside of its label
// block ("" when unlabeled).
func splitKey(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], strings.TrimSuffix(key[i+1:], "}")
}

// withLabels rebuilds name{labels,extra} from the pieces.
func withLabels(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// formatFloat renders numbers the way Prometheus expects (integers stay
// integral).
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteJSON renders the registry as a flat JSON object: counters and
// gauges map to numbers, histograms to {count, sum, min, max, mean, p50,
// p90, p95, p99} objects (expvar-style, but sorted and typed).
func (r *Registry) WriteJSON(w io.Writer) error {
	snaps := r.Snapshots()
	out := make(map[string]any, len(snaps))
	for _, s := range snaps {
		switch s.Kind {
		case "histogram":
			out[s.Key] = map[string]any{
				"count": s.Hist.Count,
				"sum":   s.Hist.Sum,
				"min":   s.Hist.Min,
				"max":   s.Hist.Max,
				"mean":  s.Hist.Mean,
				"p50":   s.Hist.P50,
				"p90":   s.Hist.P90,
				"p95":   s.Hist.P95,
				"p99":   s.Hist.P99,
			}
		default:
			out[s.Key] = s.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteBreakdown prints a human-readable per-stage breakdown: every
// histogram as a count/mean/p50/p95/p99/max row (durations rendered as
// durations, value histograms as plain numbers), followed by non-zero
// counters and gauges. This is what efdedup-bench appends to its figure
// output so a run's latency profile rides along with its results.
func (r *Registry) WriteBreakdown(w io.Writer) {
	snaps := r.Snapshots()
	var hists, scalars []Snapshot
	for _, s := range snaps {
		switch {
		case s.Kind == "histogram" && s.Hist.Count > 0:
			hists = append(hists, s)
		case s.Kind != "histogram" && s.Value != 0:
			scalars = append(scalars, s)
		}
	}
	if len(hists) > 0 {
		fmt.Fprintf(w, "%-52s %9s %10s %10s %10s %10s %10s\n",
			"stage", "count", "mean", "p50", "p95", "p99", "max")
		for _, s := range hists {
			dur := strings.HasSuffix(baseName(s.Key), "_seconds")
			fmt.Fprintf(w, "%-52s %9d %10s %10s %10s %10s %10s\n",
				s.Key, s.Hist.Count,
				formatCell(s.Hist.Mean, dur), formatCell(s.Hist.P50, dur),
				formatCell(s.Hist.P95, dur), formatCell(s.Hist.P99, dur),
				formatCell(s.Hist.Max, dur))
		}
	}
	if len(scalars) > 0 {
		fmt.Fprintln(w)
		sort.Slice(scalars, func(i, j int) bool { return scalars[i].Key < scalars[j].Key })
		for _, s := range scalars {
			fmt.Fprintf(w, "%-52s %s\n", s.Key, formatFloat(s.Value))
		}
	}
}

// formatCell renders one breakdown cell: seconds-valued metrics as
// rounded durations, everything else as plain numbers with bounded
// precision.
func formatCell(v float64, dur bool) string {
	if !dur {
		if v == float64(int64(v)) {
			return fmt.Sprintf("%d", int64(v))
		}
		return fmt.Sprintf("%.4g", v)
	}
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// Handler returns an http.Handler serving the registry: Prometheus text
// by default, JSON with ?format=json or an Accept: application/json
// header.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the observability mux every daemon mounts on
// -metrics-addr: /metrics (Prometheus text, ?format=json for JSON),
// /metrics.json, and the net/http/pprof suite under /debug/pprof/.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe serves the observability mux on addr until the listener
// fails. Daemons run it in a goroutine:
//
//	go func() { log.Println(metrics.ListenAndServe(addr, metrics.Default())) }()
func ListenAndServe(addr string, r *Registry) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	return Serve(l, r)
}

// Serve serves the observability mux on an existing listener.
func Serve(l net.Listener, r *Registry) error {
	srv := &http.Server{Handler: NewMux(r), ReadHeaderTimeout: 5 * time.Second}
	return srv.Serve(l)
}
