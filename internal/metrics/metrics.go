// Package metrics is EF-dedup's dependency-free instrumentation layer: a
// registry of atomic counters, gauges and log-linear-bucket histograms,
// plus a lightweight span API for timing a chunk batch's path through the
// dedup pipeline.
//
// The paper's evaluation (Sec. V, Figs. 5–7) is entirely about measured
// per-stage behaviour — dedup ratio, lookup overhead V(P), storage cost
// U(P), throughput under WAN latency. This package makes those same
// quantities observable on a *running* system instead of only as
// end-of-run Report totals: every hot path (agent pipeline stages,
// kvstore client/server RPCs, cloud uploads, breakers, gossip, chaos
// injection) records into a process-global registry that can be scraped
// as Prometheus text or JSON (see http.go) and printed as a per-stage
// breakdown (WriteBreakdown).
//
// Conventions (see DESIGN.md §8):
//
//   - names are snake_case with a component prefix and a unit suffix:
//     agent_lookup_seconds, kvstore_client_rpc_seconds, ..._total for
//     counters, plain nouns for gauges;
//   - label sets are small and fixed at instrumentation sites, written
//     as ("k", "v") pairs: Counter("x_total", "method", "kv.get");
//   - metrics are process-global and cumulative: two clusters in one
//     process aggregate into the same series (exactly what a daemon —
//     one component per process — wants, and what tests tolerate).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (negative deltas are ignored so a
// counter can never go backwards).
func (c *Counter) Add(delta int64) {
	if c == nil || delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. All methods are safe for concurrent use;
// fetching an existing name returns the same instance, so concurrently
// created components aggregate instead of colliding.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-global registry every component records
// into unless configured otherwise.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Key formats a metric identity from a name and ("k", "v") label pairs:
// name{k="v",k2="v2"}. Labels are sorted by key so call sites need not
// agree on order. A trailing odd label is ignored.
func Key(name string, labels ...string) string {
	if len(labels) < 2 {
		return name
	}
	n := len(labels) / 2 * 2
	type kv struct{ k, v string }
	pairs := make([]kv, 0, n/2)
	for i := 0; i+1 < n; i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// baseName strips the label block from a metric key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	key := Key(name, labels...)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{}
	r.counters[key] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	key := Key(name, labels...)
	r.mu.RLock()
	g, ok := r.gauges[key]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[key]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[key] = g
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time (breaker
// states, queue depths — anything already tracked elsewhere). Registering
// the same name again replaces the callback, so a restarted component
// (common in tests) reports its current instance, not a dead one.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	if fn == nil {
		return
	}
	key := Key(name, labels...)
	r.mu.Lock()
	r.gaugeFuncs[key] = fn
	r.mu.Unlock()
}

// Histogram returns (creating on first use) the named value histogram
// (batch sizes, byte counts — anything unit-less or integral).
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.histogram(name, 1, labels...)
}

// DurationHistogram returns (creating on first use) the named latency
// histogram: observations are nanoseconds (ObserveDuration/Since), and
// snapshots/exports are scaled to seconds per Prometheus convention.
func (r *Registry) DurationHistogram(name string, labels ...string) *Histogram {
	return r.histogram(name, 1e-9, labels...)
}

func (r *Registry) histogram(name string, scale float64, labels ...string) *Histogram {
	key := Key(name, labels...)
	r.mu.RLock()
	h, ok := r.histograms[key]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[key]; ok {
		return h
	}
	h = newHistogram(scale)
	r.histograms[key] = h
	return h
}

// Snapshot is one metric's exported state.
type Snapshot struct {
	// Key is the full identity (name plus label block).
	Key string
	// Kind is "counter", "gauge" or "histogram".
	Kind string
	// Value holds counter and gauge readings.
	Value float64
	// Hist holds histogram readings (Kind == "histogram").
	Hist HistSnapshot
}

// Snapshots returns every metric's current state, sorted by key.
func (r *Registry) Snapshots() []Snapshot {
	r.mu.RLock()
	out := make([]Snapshot, 0,
		len(r.counters)+len(r.gauges)+len(r.gaugeFuncs)+len(r.histograms))
	for k, c := range r.counters {
		out = append(out, Snapshot{Key: k, Kind: "counter", Value: float64(c.Value())})
	}
	for k, g := range r.gauges {
		out = append(out, Snapshot{Key: k, Kind: "gauge", Value: float64(g.Value())})
	}
	fns := make(map[string]func() float64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		fns[k] = fn
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, h := range r.histograms {
		hists[k] = h
	}
	r.mu.RUnlock()
	// Callbacks and histogram snapshots run outside the registry lock: a
	// gauge func may itself take locks (breaker state) or read metrics.
	for k, fn := range fns {
		out = append(out, Snapshot{Key: k, Kind: "gauge", Value: fn()})
	}
	for k, h := range hists {
		out = append(out, Snapshot{Key: k, Kind: "histogram", Hist: h.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// String implements fmt.Stringer with a compact debugging dump.
func (r *Registry) String() string {
	var b strings.Builder
	for _, s := range r.Snapshots() {
		switch s.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%s: count=%d p50=%g p99=%g\n", s.Key, s.Hist.Count, s.Hist.P50, s.Hist.P99)
		default:
			fmt.Fprintf(&b, "%s: %g\n", s.Key, s.Value)
		}
	}
	return b.String()
}
