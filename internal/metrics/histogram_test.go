package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestBucketIndexMonotonicAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 33, 63, 64, 100,
		1000, 1 << 20, 1 << 40, 1 << 62, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Errorf("bucketIndex(%d) = %d < previous %d (not monotone)", v, i, prev)
		}
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, i, numBuckets)
		}
		prev = i
	}
	if bucketIndex(-5) != 0 {
		t.Error("negative values must clamp to bucket 0")
	}
}

func TestBucketUpperCoversValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Int63()
		idx := bucketIndex(v)
		upper := bucketUpper(idx)
		if float64(v) > upper {
			t.Fatalf("value %d above its bucket upper bound %g (bucket %d)", v, upper, idx)
		}
		if idx > 0 {
			below := bucketUpper(idx - 1)
			if float64(v) <= below {
				t.Fatalf("value %d not above previous bucket bound %g (bucket %d)", v, below, idx)
			}
		}
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	h := newHistogram(1)
	for v := int64(0); v < 16; v++ {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 16 {
		t.Fatalf("count = %d, want 16", snap.Count)
	}
	if snap.Min != 0 || snap.Max != 15 {
		t.Errorf("min/max = %g/%g, want 0/15", snap.Min, snap.Max)
	}
	if snap.Sum != 120 {
		t.Errorf("sum = %g, want 120", snap.Sum)
	}
	if snap.P50 < 7 || snap.P50 > 8 {
		t.Errorf("p50 = %g, want ≈7.5", snap.P50)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// Log-linear buckets with 16 sub-buckets guarantee ≤ ~6.25% relative
	// error; check against a uniform distribution.
	h := newHistogram(1)
	const n = 100000
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		h.Observe(int64(rng.Intn(1_000_000)))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		want := q * 1_000_000
		if rel := math.Abs(got-want) / want; rel > 0.10 {
			t.Errorf("q%.0f = %g, want ≈%g (rel err %.3f)", q*100, got, want, rel)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram(1)
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Sum != 0 || len(snap.Buckets) != 0 {
		t.Errorf("empty snapshot not zero: %+v", snap)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty quantile not 0")
	}
}

func TestDurationHistogramScalesToSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.DurationHistogram("lat_seconds")
	h.ObserveDuration(250 * time.Millisecond)
	snap := h.Snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.Max < 0.24 || snap.Max > 0.26 {
		t.Errorf("max = %gs, want ≈0.25s", snap.Max)
	}
	if snap.Sum < 0.24 || snap.Sum > 0.26 {
		t.Errorf("sum = %gs, want ≈0.25s", snap.Sum)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := newHistogram(1)
	for _, v := range []int64{1, 1, 5, 100, 100, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	var last int64
	for _, b := range snap.Buckets {
		if b.Cumulative <= last {
			t.Errorf("bucket counts not strictly cumulative: %+v", snap.Buckets)
		}
		last = b.Cumulative
	}
	if last != snap.Count {
		t.Errorf("final cumulative %d != count %d", last, snap.Count)
	}
}
