package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func populated() *Registry {
	r := NewRegistry()
	r.Counter("rpc_total", "method", "kv.get").Add(3)
	r.Gauge("degraded").Set(1)
	r.GaugeFunc("breaker_state", func() float64 { return 2 }, "addr", "kv-0")
	h := r.DurationHistogram("rpc_seconds", "method", "kv.get")
	h.ObserveDuration(5 * time.Millisecond)
	h.ObserveDuration(10 * time.Millisecond)
	r.Histogram("batch_size").Observe(32)
	r.Histogram("batch_size").Observe(64)
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := populated().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rpc_total counter",
		`rpc_total{method="kv.get"} 3`,
		"# TYPE degraded gauge",
		"degraded 1",
		`breaker_state{addr="kv-0"} 2`,
		"# TYPE rpc_seconds histogram",
		`rpc_seconds_bucket{method="kv.get",le="+Inf"} 2`,
		`rpc_seconds_count{method="kv.get"} 2`,
		"# TYPE batch_size histogram",
		"batch_size_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSONShape(t *testing.T) {
	var b strings.Builder
	if err := populated().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if v, ok := out[`rpc_total{method="kv.get"}`]; !ok || v.(float64) != 3 {
		t.Errorf("counter missing or wrong: %v", v)
	}
	hist, ok := out[`rpc_seconds{method="kv.get"}`].(map[string]any)
	if !ok {
		t.Fatalf("histogram missing: %v", out)
	}
	if hist["count"].(float64) != 2 {
		t.Errorf("histogram count = %v, want 2", hist["count"])
	}
	for _, k := range []string{"p50", "p95", "p99", "mean", "max"} {
		if _, ok := hist[k]; !ok {
			t.Errorf("histogram missing %s", k)
		}
	}
}

func TestHandlerEndpointSmoke(t *testing.T) {
	srv := httptest.NewServer(NewMux(populated()))
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if !strings.Contains(body, "rpc_seconds_bucket") {
		t.Errorf("/metrics missing histogram buckets:\n%s", body)
	}

	body, ctype = get("/metrics?format=json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("json content type %q", ctype)
	}
	if !strings.Contains(body, `"p99"`) {
		t.Errorf("json output missing quantiles:\n%s", body)
	}

	body, _ = get("/metrics.json")
	if !strings.Contains(body, `"count"`) {
		t.Errorf("/metrics.json broken:\n%s", body)
	}

	// pprof is mounted.
	body, _ = get("/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Error("pprof cmdline empty")
	}
}

func TestWriteBreakdown(t *testing.T) {
	var b strings.Builder
	populated().WriteBreakdown(&b)
	out := b.String()
	if !strings.Contains(out, "rpc_seconds") || !strings.Contains(out, "p99") {
		t.Errorf("breakdown missing histogram table:\n%s", out)
	}
	if !strings.Contains(out, "rpc_total") {
		t.Errorf("breakdown missing counters:\n%s", out)
	}
	// Duration cells render as durations, not raw seconds.
	if !strings.Contains(out, "ms") {
		t.Errorf("durations not humanized:\n%s", out)
	}
}
