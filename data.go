package efdedup

import (
	"efdedup/internal/experiments"
	"efdedup/internal/sim"
	"efdedup/internal/workload"
)

// Dataset produces deterministic per-source file contents; the built-in
// datasets stand in for the paper's IoT workloads.
type Dataset = workload.Dataset

// Built-in dataset constructors.
var (
	// NewAccelDataset mirrors the paper's first dataset: walking
	// accelerometer traces from correlated participants.
	NewAccelDataset = workload.DefaultAccelDataset
	// NewVideoDataset mirrors the paper's second dataset: stationary
	// traffic-camera frame sequences.
	NewVideoDataset = workload.DefaultVideoDataset
	// NewVMImageDataset synthesizes the VM/system-backup workload the
	// paper's introduction motivates: layered images with OS-family and
	// application-pool sharing plus backup-chain mutations.
	NewVMImageDataset = workload.DefaultVMImageDataset
)

// NewPoolDataset emits streams straight from a chunk-pool System, so
// measured dedup matches Theorem 1 predictions.
func NewPoolDataset(sys *System, chunkSize, chunksPerFile int, seed int64) (Dataset, error) {
	return workload.NewPoolDataset(sys, chunkSize, chunksPerFile, seed)
}

// Simulation types (paper Sec. V-C).
type (
	// SimScenario parameterizes a large-scale synthetic deployment.
	SimScenario = sim.ScenarioConfig
	// SimAlgoCost is one partitioner's cost on a scenario.
	SimAlgoCost = sim.AlgoCost
)

// NewSimScenario mirrors the Sec. V-C setup for a node count and α.
func NewSimScenario(nodes int, alpha float64, seed int64) SimScenario {
	return sim.DefaultScenario(nodes, alpha, seed)
}

// BuildSimSystem materializes a scenario as a SNOD2 System.
func BuildSimSystem(cfg SimScenario) (*System, error) { return sim.Build(cfg) }

// CompareOnSystem evaluates several partitioners on one system.
func CompareOnSystem(sys *System, algos []Partitioner, rings int) ([]SimAlgoCost, error) {
	return sim.Compare(sys, algos, rings)
}

// Experiment types: the drivers that regenerate every figure of the
// paper's evaluation.
type (
	// ExperimentConfig scales and seeds the drivers.
	ExperimentConfig = experiments.Config
	// Figure is one reproduced evaluation artifact.
	Figure = experiments.Figure
)

// RunExperiment regenerates one figure by ID ("fig2".."fig7b").
func RunExperiment(id string, cfg ExperimentConfig) (*Figure, error) {
	return experiments.Run(id, cfg)
}

// RunAllExperiments regenerates every figure in paper order.
func RunAllExperiments(cfg ExperimentConfig) ([]*Figure, error) {
	return experiments.All(cfg)
}

// ExperimentIDs lists the available figure IDs in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}
