// Command efdedup-kvnode runs one storage replica of a D2-ring's
// deduplication index — the per-edge-node daemon of the EF-dedup
// prototype (the role a Cassandra node plays in the paper).
//
// Usage:
//
//	efdedup-kvnode -listen 0.0.0.0:7070 [-wal /var/lib/efdedup/index.wal]
//
// The daemon serves the kv.* RPC protocol until interrupted. With -wal it
// persists every write to a crash-safe append-only log and recovers on
// restart from the latest snapshot plus the WAL suffix. -wal-sync selects
// the fsync policy (always | interval | off) and -snapshot-bytes bounds
// the log by snapshotting and truncating it once it grows past the
// threshold.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"efdedup/internal/gossip"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// listenOrClose binds addr, closing owner when the bind fails: the
// daemon exits on that path and nothing else would release the owner's
// WAL, snapshot timer and gossip state.
func listenOrClose(network transport.Network, addr string, owner io.Closer) (net.Listener, error) {
	l, err := network.Listen(addr)
	if err != nil {
		owner.Close()
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return l, nil
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:7070", "address to serve the index protocol on")
		wal          = flag.String("wal", "", "optional write-ahead log path for durability across restarts")
		walSync      = flag.String("wal-sync", "interval", "WAL fsync policy: always (fsync before ack), interval (group commit), off")
		walSyncEvery = flag.Duration("wal-sync-interval", kvstore.DefaultSyncEvery, "group-commit interval under -wal-sync=interval")
		snapshot     = flag.String("snapshot", "", "snapshot file path (default <wal>.snap)")
		snapBytes    = flag.Int64("snapshot-bytes", kvstore.DefaultSnapshotBytes, "snapshot and truncate the WAL when it exceeds this size; negative disables")
		snapEvery    = flag.Duration("snapshot-interval", 0, "additionally snapshot on this period (0 disables)")
		gossipAddr   = flag.String("gossip", "", "optional gossip listen address (enables membership dissemination)")
		gossipSeeds  = flag.String("gossip-seeds", "", "comma-separated gossip addresses of existing ring members")
		metricsAddr  = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address (empty disables)")
	)
	flag.Parse()

	syncPolicy, err := kvstore.ParseSyncPolicy(*walSync)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		go func() {
			log.Printf("metrics server stopped: %v", metrics.ListenAndServe(*metricsAddr, metrics.Default()))
		}()
		log.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
	}

	node, err := kvstore.NewNode(kvstore.NodeConfig{
		WALPath:       *wal,
		WALSync:       syncPolicy,
		WALSyncEvery:  *walSyncEvery,
		SnapshotPath:  *snapshot,
		SnapshotBytes: *snapBytes,
		SnapshotEvery: *snapEvery,
	})
	if err != nil {
		return err
	}
	if *wal != "" {
		if rs := node.RecoveryStats(); rs.Records > 0 || rs.Discarded() > 0 {
			log.Printf("recovered %d WAL records (torn tail %dB, corrupt %dB discarded)",
				rs.Records, rs.TornBytes, rs.CorruptBytes)
		}
	}
	l, err := listenOrClose(transport.TCPNetwork{}, *listen, node)
	if err != nil {
		return err
	}
	node.Serve(l)
	log.Printf("efdedup-kvnode serving on %s (wal=%q sync=%s)", l.Addr(), *wal, syncPolicy)

	if *gossipAddr != "" {
		var seeds []string
		for _, s := range strings.Split(*gossipSeeds, ",") {
			if s = strings.TrimSpace(s); s != "" {
				seeds = append(seeds, s)
			}
		}
		g, err := gossip.Start(gossip.Config{
			Addr:    *gossipAddr,
			Network: transport.TCPNetwork{},
			Seeds:   seeds,
		})
		if err != nil {
			node.Close()
			return err
		}
		defer g.Stop()
		log.Printf("gossiping on %s (seeds=%v)", *gossipAddr, seeds)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down: %+v", node.Stats())
	return node.Close()
}
