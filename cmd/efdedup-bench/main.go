// Command efdedup-bench regenerates the paper's evaluation figures: the
// estimation-accuracy plots (Fig. 2, 3), the testbed throughput and
// dedup-ratio comparisons (Fig. 5a-c), the network/storage trade-off
// (Fig. 6a-c) and the large-scale simulations (Fig. 7a-b).
//
// Usage:
//
//	efdedup-bench -fig all            # every figure, paper dimensions
//	efdedup-bench -fig fig5a -quick   # one figure, CI-sized
//	efdedup-bench -fig all -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"efdedup/internal/experiments"
	"efdedup/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		fig            = flag.String("fig", "all", "figure ID (fig2, fig3, fig5a..fig7b) or 'all'")
		quick          = flag.Bool("quick", false, "shrink experiments to seconds (CI scale)")
		seed           = flag.Int64("seed", 1, "workload/scenario seed")
		outPath        = flag.String("out", "", "also write results to this file")
		verbose        = flag.Bool("v", true, "log per-point progress to stderr")
		breakdown      = flag.Bool("breakdown", true, "append the per-stage latency breakdown from the metrics registry")
		metricsAddr    = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address while the bench runs")
		hashWorkers    = flag.Int("hash-workers", 0, "agents' concurrent SHA-256 workers (0 = agent default)")
		lookupInflight = flag.Int("lookup-inflight", 0, "agents' overlapped index-lookup batches (0 = agent default)")
		maxStreams     = flag.Int("max-streams", 0, "agents' concurrent-stream admission bound (0 = agent default)")
		arenaBudget    = flag.Int64("arena-budget", 0, "agents' pooled chunk-payload byte budget (0 = agent default)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		go func() {
			log.Printf("metrics server stopped: %v", metrics.ListenAndServe(*metricsAddr, metrics.Default()))
		}()
	}

	cfg := experiments.Config{
		Quick: *quick, Seed: *seed,
		HashWorkers: *hashWorkers, LookupInflight: *lookupInflight,
		MaxStreams: *maxStreams, ArenaBudgetBytes: *arenaBudget,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	var figs []*experiments.Figure
	if *fig == "all" {
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		figs = all
	} else {
		one, err := experiments.Run(*fig, cfg)
		if err != nil {
			return err
		}
		figs = []*experiments.Figure{one}
	}
	for _, f := range figs {
		fmt.Fprintln(out, f.Format())
	}
	if *breakdown {
		// Every agent, kv node, cloud store and gossiper the experiments
		// spun up recorded into the process-global registry; this is the
		// run's own Fig. 5-style per-stage latency profile.
		fmt.Fprintln(out, "per-stage breakdown (process-wide metrics registry):")
		metrics.Default().WriteBreakdown(out)
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "regenerated %d figure(s) in %v (quick=%v, seed=%d)\n",
		len(figs), time.Since(start).Round(time.Millisecond), *quick, *seed)
	return nil
}
