// Command efdedup-cloud runs the central cloud store: a content-addressed
// chunk store with a global dedup index and file-manifest catalog, serving
// EF-dedup agents (unique-chunk uploads), cloud-assisted agents (index
// probes) and cloud-only agents (raw uploads deduplicated server-side).
//
// Usage:
//
//	efdedup-cloud -listen 0.0.0.0:7080 [-chunk-size 8192]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// listenOrClose binds addr, closing owner when the bind fails: the
// daemon exits on that path and nothing else would release the owner's
// container writer and disk state.
func listenOrClose(network transport.Network, addr string, owner io.Closer) (net.Listener, error) {
	l, err := network.Listen(addr)
	if err != nil {
		owner.Close()
		return nil, fmt.Errorf("listen %s: %w", addr, err)
	}
	return l, nil
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:7080", "address to serve the cloud protocol on")
		chunkSize   = flag.Int("chunk-size", chunk.DefaultFixedSize, "server-side chunk size for raw (cloud-only) uploads")
		dataDir     = flag.String("dir", "", "persist chunks and manifests under this directory (survives restarts)")
		statsEach   = flag.Duration("stats-interval", time.Minute, "how often to log store statistics (0 disables)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address (empty disables)")

		containerBytes = flag.Int("container-bytes", cloudstore.DefaultContainerBytes, "target sealed locality-container size")
		dupFraction    = flag.Float64("dup-fraction", cloudstore.DefaultDupFraction, "selective-duplication byte budget as a fraction of unique bytes (0 disables repacking)")
		sparseRefs     = flag.Int("sparse-ref-limit", cloudstore.DefaultSparseRefLimit, "a manifest referencing a container for at most this many chunks marks it fragmenting")
	)
	flag.Parse()

	if *metricsAddr != "" {
		go func() {
			log.Printf("metrics server stopped: %v", metrics.ListenAndServe(*metricsAddr, metrics.Default()))
		}()
		log.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
	}

	chunker, err := chunk.NewFixedChunker(*chunkSize)
	if err != nil {
		return err
	}
	srv, err := cloudstore.NewServer(cloudstore.Config{
		Chunker:        chunker,
		Dir:            *dataDir,
		ContainerBytes: *containerBytes,
		DupFraction:    *dupFraction,
		SparseRefLimit: *sparseRefs,
	})
	if err != nil {
		return err
	}
	l, err := listenOrClose(transport.TCPNetwork{}, *listen, srv)
	if err != nil {
		return err
	}
	srv.Serve(l)
	log.Printf("efdedup-cloud serving on %s (chunk-size=%d, dir=%q)", l.Addr(), *chunkSize, *dataDir)

	stop := make(chan struct{})
	if *statsEach > 0 {
		go func() {
			ticker := time.NewTicker(*statsEach)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					s := srv.Stats()
					log.Printf("stats: unique=%d chunks / %d bytes, logical=%d bytes, raw-uploads=%d, manifests=%d, containers=%d (dup=%d bytes)",
						s.UniqueChunks, s.UniqueBytes, s.LogicalBytes, s.RawUploads, s.Manifests, s.ContainersSealed, s.DuplicatedBytes)
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	log.Printf("shutting down: %+v", srv.Stats())
	return srv.Close()
}
