package main

import (
	"testing"

	"efdedup/internal/transport"
)

type closeRecorder struct{ closed bool }

func (c *closeRecorder) Close() error { c.closed = true; return nil }

// A failed bind is the daemon's exit path: the server (and with it the
// container writer and on-disk state) must be released, not leaked.
func TestListenFailureClosesServer(t *testing.T) {
	m := transport.NewMemNetwork()
	if _, err := m.Listen("busy"); err != nil {
		t.Fatalf("pre-occupy address: %v", err)
	}
	rec := &closeRecorder{}
	if _, err := listenOrClose(m, "busy", rec); err == nil {
		t.Fatal("expected an error listening on an occupied address")
	}
	if !rec.closed {
		t.Fatal("owner was not closed after the listen failure")
	}
}

func TestListenSuccessKeepsServerOpen(t *testing.T) {
	m := transport.NewMemNetwork()
	rec := &closeRecorder{}
	l, err := listenOrClose(m, "free", rec)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer l.Close()
	if rec.closed {
		t.Fatal("owner was closed on a successful listen")
	}
}
