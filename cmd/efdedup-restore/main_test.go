package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"efdedup/internal/cloudstore"
	"efdedup/internal/transport"
)

// startCloud runs a disk-backed cloud store on a memory network and
// returns a connected client plus the data directory.
func startCloud(t *testing.T) (*cloudstore.Client, *cloudstore.Server, string) {
	t.Helper()
	dir := t.TempDir()
	nw := transport.NewMemNetwork()
	srv, err := cloudstore.NewServer(cloudstore.Config{Dir: dir, ContainerBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	cl, err := cloudstore.Dial(context.Background(), nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, srv, dir
}

func listTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	tmps, err := filepath.Glob(filepath.Join(dir, ".restore-*"))
	if err != nil {
		t.Fatal(err)
	}
	return tmps
}

func TestRestoreToFileStreamsAndRenames(t *testing.T) {
	cl, srv, _ := startCloud(t)
	ctx := context.Background()
	data := bytes.Repeat([]byte("restore me 0123456789"), 8000)
	if _, err := cl.UploadRaw(ctx, "img", data); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	outDir := t.TempDir()
	out := filepath.Join(outDir, "restored.bin")
	st, err := restoreToFile(ctx, cl, "img", out, cloudstore.RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("restored file differs")
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("stats.Bytes = %d, want %d", st.Bytes, len(data))
	}
	if tmps := listTempFiles(t, outDir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// TestRestoreToFileFailureLeavesTargetUntouched corrupts the stored
// container so the restore fails mid-stream, then asserts the atomic
// output protocol: a pre-existing file at -out survives byte-identically
// and no temp file is left behind.
func TestRestoreToFileFailureLeavesTargetUntouched(t *testing.T) {
	cl, srv, storeDir := startCloud(t)
	ctx := context.Background()
	data := bytes.Repeat([]byte("will be damaged 0123456789"), 8000)
	if _, err := cl.UploadRaw(ctx, "img", data); err != nil {
		t.Fatal(err)
	}
	srv.FlushContainers()

	conts, err := filepath.Glob(filepath.Join(storeDir, "containers", "*.cont"))
	if err != nil || len(conts) == 0 {
		t.Fatalf("no containers (err=%v)", err)
	}
	raw, err := os.ReadFile(conts[len(conts)-1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(conts[len(conts)-1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	outDir := t.TempDir()
	out := filepath.Join(outDir, "restored.bin")
	previous := []byte("precious previous restore")
	if err := os.WriteFile(out, previous, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := restoreToFile(ctx, cl, "img", out, cloudstore.RestoreOptions{}); err == nil {
		t.Fatal("restore over a corrupt container succeeded")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, previous) {
		t.Fatal("failed restore clobbered the existing output file")
	}
	if tmps := listTempFiles(t, outDir); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}
