// Command efdedup-restore downloads a stream previously deduplicated into
// the central cloud store, reassembling it from its manifest and verifying
// every chunk's content address.
//
// Usage:
//
//	efdedup-restore -cloud cloud:7080 -name edge-0/file-3 -out restored.bin
//	efdedup-restore -cloud cloud:7080 -list            # (show store stats)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"efdedup/internal/cloudstore"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cloudAddr = flag.String("cloud", "127.0.0.1:7080", "central cloud store address")
		name      = flag.String("name", "", "manifest name to restore")
		out       = flag.String("out", "", "output path ('-' or empty writes to stdout)")
		stats     = flag.Bool("stats", false, "print store statistics instead of restoring")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall deadline")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client, err := cloudstore.Dial(ctx, transport.TCPNetwork{}, *cloudAddr)
	if err != nil {
		return err
	}
	defer client.Close()

	if *stats {
		st, err := client.FetchStats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("unique chunks: %d (%d bytes)\nlogical bytes: %d\nraw uploads:   %d\nmanifests:     %d\n",
			st.UniqueChunks, st.UniqueBytes, st.LogicalBytes, st.RawUploads, st.Manifests)
		return nil
	}
	if *name == "" {
		return fmt.Errorf("need -name (or -stats); usage: efdedup-restore -name <manifest>")
	}
	data, err := client.Restore(ctx, *name)
	if err != nil {
		return err
	}
	if *out == "" || *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("restored %s: %d bytes, all chunks verified", *name, len(data))
	return nil
}
