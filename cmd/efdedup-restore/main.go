// Command efdedup-restore downloads a stream previously deduplicated into
// the central cloud store, reassembling it from its manifest and verifying
// every chunk's content address. The restore streams container-at-a-time
// through a read-ahead cache — memory use is bounded by the cache, not the
// file — and the output file is written atomically (temp file + rename),
// so an interrupted restore never leaves a half-written file at -out.
//
// Usage:
//
//	efdedup-restore -cloud cloud:7080 -name edge-0/file-3 -out restored.bin
//	efdedup-restore -cloud cloud:7080 -stats            # (show store stats)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"efdedup/internal/cloudstore"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cloudAddr = flag.String("cloud", "127.0.0.1:7080", "central cloud store address")
		name      = flag.String("name", "", "manifest name to restore")
		out       = flag.String("out", "", "output path ('-' or empty writes to stdout)")
		stats     = flag.Bool("stats", false, "print store statistics instead of restoring")
		timeout   = flag.Duration("timeout", 5*time.Minute, "overall deadline")
		readAhead = flag.Int("read-ahead", cloudstore.DefaultRestoreReadAhead, "parallel container fetches")
		cacheCap  = flag.Int("cache-containers", cloudstore.DefaultRestoreCacheContainers, "read-ahead container cache capacity")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client, err := cloudstore.Dial(ctx, transport.TCPNetwork{}, *cloudAddr)
	if err != nil {
		return err
	}
	defer client.Close()

	if *stats {
		st, err := client.FetchStats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("unique chunks: %d (%d bytes)\nlogical bytes: %d\nraw uploads:   %d\nmanifests:     %d\ncontainers:    %d sealed (%d duplicated bytes)\n",
			st.UniqueChunks, st.UniqueBytes, st.LogicalBytes, st.RawUploads, st.Manifests, st.ContainersSealed, st.DuplicatedBytes)
		return nil
	}
	if *name == "" {
		return fmt.Errorf("need -name (or -stats); usage: efdedup-restore -name <manifest>")
	}
	opts := cloudstore.RestoreOptions{ReadAhead: *readAhead, CacheContainers: *cacheCap}

	if *out == "" || *out == "-" {
		_, err := client.RestoreTo(ctx, *name, os.Stdout, opts)
		return err
	}
	st, err := restoreToFile(ctx, client, *name, *out, opts)
	if err != nil {
		return err
	}
	log.Printf("restored %s: %d bytes in %d chunks, %d containers touched (cache %d hit / %d miss, %d fallback chunks), all chunks verified",
		*name, st.Bytes, st.Chunks, st.ContainersTouched, st.CacheHits, st.CacheMisses, st.FallbackChunks)
	return nil
}

// restoreToFile streams the restore into a temp file next to the target
// and renames it into place only after every chunk verified, so -out is
// either absent, the old file, or a complete verified restore.
func restoreToFile(ctx context.Context, client *cloudstore.Client, name, out string, opts cloudstore.RestoreOptions) (cloudstore.RestoreStats, error) {
	dir := filepath.Dir(out)
	tmp, err := os.CreateTemp(dir, ".restore-*")
	if err != nil {
		return cloudstore.RestoreStats{}, err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	st, err := client.RestoreTo(ctx, name, tmp, opts)
	if err != nil {
		tmp.Close()
		return st, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return st, err
	}
	if err := tmp.Close(); err != nil {
		return st, err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return st, err
	}
	if err := os.Rename(tmpName, out); err != nil {
		return st, err
	}
	// Fsync the directory so the rename itself survives power loss.
	df, err := os.Open(dir)
	if err != nil {
		return st, err
	}
	if err := df.Sync(); err != nil {
		df.Close()
		return st, err
	}
	return st, df.Close()
}
