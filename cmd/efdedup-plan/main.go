// Command efdedup-plan runs the full EF-dedup planning pipeline on
// sampled data: measure ground-truth dedup ratios across the sampled
// sources, fit the chunk-pool model (Algorithm 1), assemble the SNOD2
// instance, and partition the nodes into D2-rings (SMART). The plan is
// printed as JSON, ready to drive agent deployment.
//
// Sample layout: one subdirectory per edge node, named by its numeric ID,
// each containing sample files from that node's data flow:
//
//	samples/
//	  0/a.bin 0/b.bin
//	  1/a.bin ...
//
// Usage:
//
//	efdedup-plan -samples ./samples -rings 4 -alpha 0.1 \
//	    [-costs costs.json] [-rates 100,100,50] [-chunk-size 8192]
//
// costs.json holds the pairwise lookup cost matrix ν_ij (e.g. RTT in
// milliseconds): [[0,5],[5,0]]. Without it, a uniform matrix is used.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"efdedup/internal/chunk"
	"efdedup/internal/core"
	"efdedup/internal/estimate"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// loadSamples reads the per-node sample directories.
func loadSamples(dir string) (map[int][][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	samples := make(map[int][][]byte)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id, err := strconv.Atoi(e.Name())
		if err != nil {
			return nil, fmt.Errorf("sample directory %q is not a numeric node ID", e.Name())
		}
		files, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name(), f.Name()))
			if err != nil {
				return nil, err
			}
			samples[id] = append(samples[id], data)
		}
		if len(samples[id]) == 0 {
			return nil, fmt.Errorf("node %d has no sample files", id)
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no node sample directories under %s", dir)
	}
	return samples, nil
}

// planOutput is the JSON shape printed on success.
type planOutput struct {
	Rings        [][]int     `json:"rings"`
	StorageCost  float64     `json:"storageCost"`
	NetworkCost  float64     `json:"networkCost"`
	Aggregate    float64     `json:"aggregateCost"`
	PoolSizes    []float64   `json:"poolSizes"`
	Sources      []int       `json:"sources"`
	Probs        [][]float64 `json:"characteristicVectors"`
	FitMSE       float64     `json:"fitMSE"`
	FitSweeps    int         `json:"fitSweeps"`
	FitMeanError float64     `json:"fitMeanRelativeError"`
}

func run() error {
	var (
		samplesDir = flag.String("samples", "", "directory of per-node sample files (required)")
		rings      = flag.Int("rings", 4, "maximum number of D2-rings M")
		alpha      = flag.Float64("alpha", 0.1, "network/storage trade-off α")
		gamma      = flag.Float64("gamma", 2, "index replication factor γ")
		window     = flag.Float64("T", 60, "deduplication window T in seconds")
		pools      = flag.Int("pools", 3, "chunk-pool model order K")
		chunkSize  = flag.Int("chunk-size", chunk.DefaultFixedSize, "chunk size in bytes")
		costsPath  = flag.String("costs", "", "JSON pairwise lookup-cost matrix ν (node-ID indexed)")
		ratesFlag  = flag.String("rates", "", "comma-separated per-node chunk rates (default: derived from samples)")
	)
	flag.Parse()
	if *samplesDir == "" {
		return fmt.Errorf("need -samples; run with -h for usage")
	}

	samples, err := loadSamples(*samplesDir)
	if err != nil {
		return err
	}
	ids := make([]int, 0, len(samples))
	for id := range samples {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	n := ids[len(ids)-1] + 1

	// Network costs: explicit matrix or uniform 1.0 between distinct nodes.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 1
			}
		}
	}
	if *costsPath != "" {
		raw, err := os.ReadFile(*costsPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &cost); err != nil {
			return fmt.Errorf("parse %s: %w", *costsPath, err)
		}
	}

	chunker, err := chunk.NewFixedChunker(*chunkSize)
	if err != nil {
		return err
	}

	// Rates: explicit, or each node's sampled chunk count per window.
	rates := make([]float64, len(ids))
	if *ratesFlag != "" {
		parts := strings.Split(*ratesFlag, ",")
		if len(parts) != len(ids) {
			return fmt.Errorf("-rates has %d entries for %d nodes", len(parts), len(ids))
		}
		for i, p := range parts {
			r, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("parse rate %q: %w", p, err)
			}
			rates[i] = r
		}
	} else {
		for i, id := range ids {
			total := 0
			for _, f := range samples[id] {
				total += (len(f) + *chunkSize - 1) / *chunkSize
			}
			rates[i] = float64(total) / *window
		}
	}

	plan, err := core.MakePlan(core.PlanInput{
		Samples: samples,
		Chunker: chunker,
		Rates:   rates,
		NetCost: cost,
		T:       *window,
		Gamma:   *gamma,
		Alpha:   *alpha,
		Rings:   *rings,
		Pools:   *pools,
		FitConfig: estimate.Config{
			MSEThreshold: 0.01,
		},
	})
	if err != nil {
		return err
	}

	out := planOutput{
		Rings:        plan.Rings,
		StorageCost:  plan.Cost.Storage,
		NetworkCost:  plan.Cost.Network,
		Aggregate:    plan.Cost.Aggregate,
		PoolSizes:    plan.Estimate.PoolSizes,
		Sources:      plan.GroundTruth.Sources,
		Probs:        plan.Estimate.Probs,
		FitMSE:       plan.Estimate.MSE,
		FitSweeps:    plan.Estimate.Iterations,
		FitMeanError: plan.Estimate.MeanRelativeError(plan.GroundTruth),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
