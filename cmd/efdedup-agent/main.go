// Command efdedup-agent runs the Dedup Agent on one edge node: it chunks
// the given files, deduplicates them against the configured index and
// ships unique chunks to the central cloud.
//
// Ring mode (EF-dedup proper) deduplicates against the D2-ring's
// distributed index:
//
//	efdedup-agent -mode ring -cloud cloud:7080 \
//	    -ring kv0:7070,kv1:7070,kv2:7070 -local kv0:7070 data/*.bin
//
// Cloud-assisted mode probes the cloud's global index instead:
//
//	efdedup-agent -mode cloud-assisted -cloud cloud:7080 data/*.bin
//
// Cloud-only mode ships raw data:
//
//	efdedup-agent -mode cloud-only -cloud cloud:7080 data/*.bin
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"efdedup/internal/agent"
	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/kvstore"
	"efdedup/internal/metrics"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func parseMode(s string) (agent.Mode, error) {
	switch s {
	case "ring":
		return agent.ModeRing, nil
	case "cloud-assisted":
		return agent.ModeCloudAssisted, nil
	case "cloud-only":
		return agent.ModeCloudOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want ring, cloud-assisted or cloud-only)", s)
	}
}

func run() error {
	var (
		modeFlag       = flag.String("mode", "ring", "dedup strategy: ring | cloud-assisted | cloud-only")
		cloudAddr      = flag.String("cloud", "127.0.0.1:7080", "central cloud store address")
		ringList       = flag.String("ring", "", "comma-separated D2-ring index node addresses (ring mode)")
		localAddr      = flag.String("local", "", "this node's index address, preferred for lookups (ring mode)")
		name           = flag.String("name", "agent", "agent name recorded in manifests")
		chunkSize      = flag.Int("chunk-size", chunk.DefaultFixedSize, "fixed chunk size in bytes")
		cdc            = flag.Bool("cdc", false, "use content-defined (gear) chunking instead of fixed")
		rf             = flag.Int("rf", 2, "index replication factor γ (ring mode)")
		hashWorkers    = flag.Int("hash-workers", 0, "concurrent SHA-256 workers shared by all streams (0 = GOMAXPROCS, capped at physical cores)")
		lookupInflight = flag.Int("lookup-inflight", 0, "overlapped index-lookup batches shared by all streams (0 = default)")
		maxStreams     = flag.Int("max-streams", 0, "concurrent streams admitted into the agent; extra files queue (0 = default, negative = unlimited)")
		arenaBudget    = flag.Int64("arena-budget", 0, "chunk payload bytes admitted across all streams (0 = default 256 MiB, negative = unlimited)")
		repairEvery    = flag.Duration("repair-interval", 0, "background anti-entropy repair period for the ring index (0 disables; ring mode)")
		timeout        = flag.Duration("timeout", 10*time.Minute, "overall processing deadline")
		metricsAddr    = flag.String("metrics-addr", "", "serve /metrics and /debug/pprof/ on this address (empty disables)")
		breakdown      = flag.Bool("breakdown", false, "print the per-stage latency breakdown after processing")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("no input files; usage: efdedup-agent [flags] file...")
	}
	mode, err := parseMode(*modeFlag)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		go func() {
			log.Printf("metrics server stopped: %v", metrics.ListenAndServe(*metricsAddr, metrics.Default()))
		}()
		log.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
	}

	var chunker chunk.Chunker
	if *cdc {
		chunker = chunk.NewDefaultGearChunker()
	} else {
		fc, err := chunk.NewFixedChunker(*chunkSize)
		if err != nil {
			return err
		}
		chunker = fc
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	nw := transport.TCPNetwork{}
	cloud, err := cloudstore.Dial(ctx, nw, *cloudAddr)
	if err != nil {
		return err
	}
	defer cloud.Close()

	cfg := agent.Config{
		Name: *name, Mode: mode, Chunker: chunker, Cloud: cloud,
		HashWorkers: *hashWorkers, LookupInflight: *lookupInflight,
		MaxStreams: *maxStreams, ArenaBudgetBytes: *arenaBudget,
	}
	if mode == agent.ModeRing {
		members := strings.Split(*ringList, ",")
		if len(members) == 0 || members[0] == "" {
			return fmt.Errorf("ring mode needs -ring with at least one index address")
		}
		idx, err := kvstore.NewCluster(kvstore.ClusterConfig{
			Members:           members,
			ReplicationFactor: *rf,
			LocalAddr:         *localAddr,
			Network:           nw,
			RepairInterval:    *repairEvery,
		})
		if err != nil {
			return err
		}
		defer idx.Close()
		cfg.Index = idx
	}
	a, err := agent.New(cfg)
	if err != nil {
		return err
	}

	// Files fan out concurrently; the agent's MaxStreams gate queues the
	// overflow, so the launch loop needs no pacing of its own.
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, path := range flag.Args() {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			f, err := os.Open(path)
			if err == nil {
				var rep agent.Report
				rep, err = a.ProcessStream(ctx, path, f)
				f.Close()
				if err == nil {
					log.Printf("%s: %d bytes, %d chunks, %d dup, %d uploaded (%d bytes), ratio %.2f, %.1f MB/s",
						path, rep.InputBytes, rep.InputChunks, rep.DuplicateChunks,
						rep.UploadedChunks, rep.UploadedBytes, rep.DedupRatio(), rep.Throughput()/1e6)
					return
				}
			}
			errMu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("process %s: %w", path, err)
			}
			errMu.Unlock()
		}(path)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	tot := a.Totals()
	log.Printf("total: %d bytes in, %d uploaded, overall ratio %.2f",
		tot.InputBytes, tot.UploadedBytes, tot.DedupRatio())
	if *breakdown {
		fmt.Println("\nper-stage breakdown:")
		metrics.Default().WriteBreakdown(os.Stdout)
	}
	return nil
}
