// Command efdedup-partition solves SNOD2 for a cluster description: it
// reads a JSON spec of the chunk-pool system (pools, characteristic
// vectors, rates, network costs, γ, α, T) and prints the D2-ring
// assignment chosen by the requested algorithm, with its cost breakdown.
//
// Usage:
//
//	efdedup-partition -spec cluster.json -rings 5 -algo smart
//
// Spec format (JSON):
//
//	{
//	  "PoolSizes": [50000, 50000],
//	  "Sources": [{"ID": 0, "Rate": 100, "Probs": [0.6, 0.1]}, ...],
//	  "T": 60, "Gamma": 2, "Alpha": 0.1,
//	  "NetCost": [[0, 0.005], [0.005, 0]]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"efdedup/internal/model"
	"efdedup/internal/partition"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func algoByName(name string) (partition.Algorithm, error) {
	switch name {
	case "smart":
		return partition.Portfolio{}, nil
	case "smart-greedy":
		return partition.SmartGreedy{}, nil
	case "smart-seq":
		return partition.SmartSequential{}, nil
	case "smart-equal":
		return partition.EqualSize{}, nil
	case "matching":
		return partition.Matching{}, nil
	case "network-only":
		return partition.SmartGreedy{Obj: partition.NetworkOnlyObjective}, nil
	case "dedup-only":
		return partition.SmartGreedy{Obj: partition.DedupOnlyObjective}, nil
	case "random":
		return partition.RandomBalanced{Seed: 1}, nil
	case "optimal":
		return partition.BruteForce{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func run() error {
	var (
		specPath = flag.String("spec", "-", "cluster spec JSON file ('-' for stdin)")
		rings    = flag.Int("rings", 5, "maximum number of D2-rings M")
		algoName = flag.String("algo", "smart", "partitioner: smart | smart-greedy | smart-seq | smart-equal | matching | network-only | dedup-only | random | optimal")
		compare  = flag.Bool("compare", false, "also print every other algorithm's cost for comparison")
	)
	flag.Parse()

	var raw []byte
	var err error
	if *specPath == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*specPath)
	}
	if err != nil {
		return err
	}
	var sys model.System
	if err := json.Unmarshal(raw, &sys); err != nil {
		return fmt.Errorf("parse spec: %w", err)
	}
	if err := sys.Validate(); err != nil {
		return err
	}

	algo, err := algoByName(*algoName)
	if err != nil {
		return err
	}
	ringsOut, cost, err := partition.Evaluate(algo, &sys, *rings)
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s\n", algo.Name())
	for i, ring := range ringsOut {
		ids := make([]int, len(ring))
		for j, idx := range ring {
			ids[j] = sys.Sources[idx].ID
		}
		fmt.Printf("ring %d (%d nodes): %v  Ω=%.3f\n", i, len(ring), ids, sys.DedupRatio(ring))
	}
	fmt.Printf("storage U = %.2f chunks\nnetwork V = %.4f\naggregate = %.2f (α=%g)\n",
		cost.Storage, cost.Network, cost.Aggregate, sys.Alpha)

	if *compare {
		fmt.Println("\ncomparison:")
		for _, name := range []string{"smart", "smart-greedy", "smart-seq", "smart-equal", "matching", "network-only", "dedup-only", "random"} {
			a, _ := algoByName(name)
			_, c, err := partition.Evaluate(a, &sys, *rings)
			if err != nil {
				fmt.Printf("  %-14s error: %v\n", name, err)
				continue
			}
			fmt.Printf("  %-14s aggregate=%.2f (U=%.2f, V=%.4f)\n", name, c.Aggregate, c.Storage, c.Network)
		}
	}
	return nil
}
