# EF-dedup build targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench figures figures-quick vet cover clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation at full size.
figures:
	$(GO) run ./cmd/efdedup-bench -fig all -out results_full.txt

# CI-sized figures (seconds).
figures-quick:
	$(GO) run ./cmd/efdedup-bench -fig all -quick

clean:
	$(GO) clean ./...
