# EF-dedup build targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race race-core bench figures figures-quick vet cover ci clean

all: build test

# What CI runs (.github/workflows/ci.yml).
ci: build vet test race

# Race-detect the resilience-critical packages only (quick local loop;
# CI races the whole module).
race-core:
	$(GO) test -race ./internal/transport ./internal/kvstore ./internal/agent ./internal/faultnet ./internal/gossip ./internal/retrypolicy

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every figure of the paper's evaluation at full size.
figures:
	$(GO) run ./cmd/efdedup-bench -fig all -out results_full.txt

# CI-sized figures (seconds).
figures-quick:
	$(GO) run ./cmd/efdedup-bench -fig all -quick

clean:
	$(GO) clean ./...
