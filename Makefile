# EF-dedup build targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race race-core bench bench-agent bench-ingest bench-restore bench-compare bench-compare-ingest bench-compare-restore figures figures-quick vet cover lint wire-lock wire-lock-check fuzz-short chaos ci clean

all: build test

# What CI runs (.github/workflows/ci.yml).
ci: build vet lint wire-lock-check test race fuzz-short chaos

# Race-detect the resilience-critical packages only (quick local loop;
# CI races the whole module).
race-core:
	$(GO) test -race ./internal/transport ./internal/kvstore ./internal/agent ./internal/faultnet ./internal/gossip ./internal/retrypolicy

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Project-specific static analysis (lint/): concurrency, determinism,
# interprocedural (lock order, lost errors, hot-path allocation),
# error-classification and metric-hygiene invariants. Fails on any
# diagnostic. One invocation covers the main module AND the lint module
# itself (self-lint); the `go list` load is cached per run, so the
# second pattern costs one typecheck, not a second list. Also runs the
# linter's own analyzer test suites. The on-disk listing cache (keyed
# on go.sum + source content) is shared between the test step, the lint
# step, and repeat runs.
lint: export EFDEDUP_LINT_LISTCACHE ?= $(CURDIR)/.lint-listcache
lint:
	$(GO) test ./lint/...
	$(GO) run ./lint/cmd/efdedup-lint ./... ./lint/...

# Regenerate lint/wire.lock from the code: the wirelock analyzer (and
# wire-lock-check in CI) fail when the RPC surface or a codec layout
# drifts from the checked-in file, so every wire-format change is an
# explicit `make wire-lock` + review of the diff.
wire-lock:
	$(GO) run ./lint/cmd/efdedup-lint -write-wire-lock lint/wire.lock ./...

# Fail with a readable diff when lint/wire.lock is stale.
wire-lock-check:
	@$(GO) run ./lint/cmd/efdedup-lint -write-wire-lock .wire.lock.tmp ./... 2>/dev/null
	@diff -u lint/wire.lock .wire.lock.tmp \
		|| { rm -f .wire.lock.tmp; \
		     echo "lint/wire.lock is stale: the wire format changed. Review the diff above, then run 'make wire-lock'."; \
		     exit 1; }
	@rm -f .wire.lock.tmp

# Short coverage-guided fuzz pass over the chunker, WAL-replay and wire
# codec invariants (the seed corpora alone run in every `make test`),
# plus a one-iteration bench smoke so bit-rot in the chunk benchmarks
# surfaces here, not in the nightly full bench.
fuzz-short:
	$(GO) test ./internal/chunk -fuzz FuzzGearRoundTrip -fuzztime 10s
	$(GO) test ./internal/chunk -fuzz FuzzFixedRoundTrip -fuzztime 10s
	$(GO) test ./internal/chunk -fuzz FuzzGearVectorizedEquivalence -fuzztime 10s
	$(GO) test ./internal/kvstore -fuzz 'FuzzWALReplay$$' -fuzztime 10s
	$(GO) test ./internal/kvstore -fuzz FuzzWALReplayRawBytes -fuzztime 10s
	$(GO) test ./internal/kvstore -fuzz 'FuzzKVCodecs$$' -fuzztime 10s
	$(GO) test ./internal/kvstore -fuzz 'FuzzRepairCodecs$$' -fuzztime 10s
	$(GO) test ./internal/cloudstore -fuzz 'FuzzCloudCodecs$$' -fuzztime 10s
	$(GO) test ./internal/gossip -fuzz 'FuzzGossipTable$$' -fuzztime 10s
	$(GO) test -bench=. -benchtime=1x ./internal/chunk

# Crash/recovery suite under the race detector: kill-restart-rejoin
# e2e (torn WAL tail, anti-entropy convergence, membership growth) plus
# the WAL/snapshot durability and repair unit tests.
chaos:
	$(GO) test -race -count=2 -run 'TestDurableRingSurvivesKillRestartRejoin|TestAgentSurvives|TestRestoreSurvives' ./internal/faultnet
	$(GO) test -race -count=2 -run 'TestWAL|TestSnapshot|TestRepair|TestProbe' ./internal/kvstore

bench:
	$(GO) test -bench=. -benchmem ./...

# One-iteration smoke of the end-to-end agent pipeline benchmark (also in
# CI): catches bit-rot in the bench harness without paying for a real
# measurement run.
bench-agent:
	$(GO) test -run '^$$' -bench '^BenchmarkAgentProcessStream$$' -benchtime=1x -cpu 1,4,8 ./internal/agent

# One-iteration smoke of the shared-scheduler multi-stream benchmark
# (also in CI): all three fan-outs, single GOMAXPROCS point.
bench-ingest:
	$(GO) test -run '^$$' -bench '^BenchmarkAgentConcurrentStreams$$' -benchtime=1x -cpu 1 ./internal/agent

# One-iteration smoke of the container restore benchmarks (also in CI):
# container pipeline vs serial chunk-by-chunk baseline over a
# latency-shaped link.
bench-restore:
	$(GO) test -run '^$$' -bench '^BenchmarkCloudRestore(Serial)?$$' -benchtime=1x -cpu 4 ./internal/cloudstore

# Measure the agent pipeline and print a benchstat-style old/new/delta
# table against BENCH_agent.json. `go run ./tools/benchcompare -update`
# re-records the baseline. MAX_REGRESS gates the run: beyond that
# percent of MB/s lost or allocs/op gained, the target exits non-zero.
MAX_REGRESS ?= 10
bench-compare:
	$(GO) run ./tools/benchcompare -max-regress $(MAX_REGRESS)

# Measure container vs serial restore throughput and compare against
# BENCH_restore.json (same -update and -max-regress conventions as
# bench-compare).
# Same comparison for the multi-stream ingest benchmark against
# BENCH_ingest.json (same -update flow as bench-compare).
# Single GOMAXPROCS point: on the 1-physical-core CI container the
# -cpu 4/8 rows only oversubscribe that core and swing ±30% run to run,
# which would make the regression gate pure noise.
bench-compare-ingest:
	$(GO) run ./tools/benchcompare -bench BenchmarkAgentConcurrentStreams \
		-baseline BENCH_ingest.json -cpu 1 -benchtime 5x -max-regress $(MAX_REGRESS)

bench-compare-restore:
	$(GO) run ./tools/benchcompare -bench 'BenchmarkCloudRestore|BenchmarkCloudRestoreSerial' \
		-pkg ./internal/cloudstore -cpu 1,4 -baseline BENCH_restore.json \
		-max-regress $(MAX_REGRESS)

# Regenerate every figure of the paper's evaluation at full size.
figures:
	$(GO) run ./cmd/efdedup-bench -fig all -out results_full.txt

# CI-sized figures (seconds).
figures-quick:
	$(GO) run ./cmd/efdedup-bench -fig all -quick

clean:
	$(GO) clean ./...
