// Partitioning: SNOD2 solvers on a synthetic geo-distributed topology.
//
// Thirty edge nodes spread over six metro areas generate flows from five
// content populations. The example runs every partitioner on the same
// instance and prints the storage/network/aggregate cost table — the
// trade-off the paper's Fig. 6(c) and Fig. 7 quantify — plus the rings
// SMART picked.
//
//	go run ./examples/partitioning
package main

import (
	"fmt"
	"log"

	"efdedup"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := efdedup.BuildSimSystem(efdedup.SimScenario{
		Nodes:         30,
		ContentGroups: 5,
		PoolSize:      20000,
		GroupProb:     0.6,
		UniqueProb:    0.1,
		RateMin:       50,
		RateMax:       150,
		MaxLatency:    50,
		T:             60,
		Gamma:         2,
		Alpha:         0.025,
		Seed:          11,
	})
	if err != nil {
		return err
	}

	const rings = 6
	algos := []struct {
		name string
		algo efdedup.Partitioner
	}{
		{"SMART (portfolio)", efdedup.SMART},
		{"SMART greedy", efdedup.SMARTGreedy},
		{"SMART equal-size", efdedup.SMARTEqualSize},
		{"matching", efdedup.MatchingPartitioner},
		{"network-only", efdedup.NetworkOnly},
		{"dedup-only", efdedup.DedupOnly},
	}

	fmt.Printf("%-20s %10s %12s %12s %8s\n", "algorithm", "rings", "storage U", "network V", "cost")
	var smartRings [][]int
	for _, a := range algos {
		rs, cost, err := efdedup.Partition(a.algo, sys, rings)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if a.name == "SMART (portfolio)" {
			smartRings = rs
		}
		fmt.Printf("%-20s %10d %12.0f %12.2f %8.0f\n",
			a.name, len(rs), cost.Storage, cost.Network, cost.Aggregate)
	}

	fmt.Println("\nSMART's D2-rings (node IDs):")
	for i, r := range smartRings {
		fmt.Printf("  ring %d (%2d nodes, Ω=%.2f): %v\n",
			i, len(r), sys.DedupRatio(r), r)
	}
	return nil
}
