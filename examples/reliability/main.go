// Reliability: the fault-tolerance machinery of EF-dedup, exercised
// end to end.
//
// The paper leans on two reliability mechanisms and names a third as
// future work:
//
//  1. the D2-ring index replicates chunk hashes (γ=2), so dedup keeps
//     working when an index node dies;
//  2. Cassandra-style membership changes are seamless — nodes join and
//     leave without downtime;
//  3. erasure-coded chunk replicas cut the storage cost of durability
//     (Sec. VII future work).
//
// This example kills an index replica mid-run, grows the ring and
// rebalances, then stores chunks in an RS(4,2) sharded store and destroys
// two disks — everything keeps working.
//
//	go run ./examples/reliability
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"efdedup"
	"efdedup/internal/kvstore"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	nw := transport.NewMemNetwork()

	// --- 1. A replicated D2-ring index that survives node loss. -------
	fmt.Println("1) replicated index vs node failure")
	nodes := make([]*efdedup.IndexNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		node, err := efdedup.NewIndexNode(efdedup.IndexNodeConfig{})
		if err != nil {
			return err
		}
		addrs[i] = fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addrs[i])
		if err != nil {
			return err
		}
		node.Serve(l)
		nodes[i] = node
	}
	idx, err := efdedup.NewIndexCluster(efdedup.IndexClusterConfig{
		Members:           addrs,
		ReplicationFactor: 2,
		WriteConsistency:  kvstore.All,
		Network:           nw,
	})
	if err != nil {
		return err
	}
	defer idx.Close()

	keys := make([][]byte, 100)
	vals := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chunk-hash-%03d", i))
		vals[i] = []byte("meta")
	}
	if err := idx.BatchPut(ctx, keys, vals); err != nil {
		return err
	}
	nodes[1].Close() // kill one replica
	found, err := idx.BatchHas(ctx, keys)
	if err != nil {
		return err
	}
	hits := 0
	for _, ok := range found {
		if ok {
			hits++
		}
	}
	fmt.Printf("   killed kv-1; %d/100 hashes still resolvable (RF=2)\n\n", hits)

	// --- 2. Seamless membership change. --------------------------------
	fmt.Println("2) join a node, rebalance, decommission another")
	newNode, err := efdedup.NewIndexNode(efdedup.IndexNodeConfig{})
	if err != nil {
		return err
	}
	l, err := nw.Listen("kv-new")
	if err != nil {
		return err
	}
	newNode.Serve(l)
	defer newNode.Close()
	if err := idx.AddMember("kv-new"); err != nil {
		return err
	}
	if err := idx.RemoveMember(addrs[1]); err != nil { // drop the dead one
		return err
	}
	if err := idx.Rebalance(ctx); err != nil {
		return err
	}
	fmt.Printf("   ring is now %v; new node holds %d entries after rebalance\n\n",
		idx.Members(), newNode.Len())

	// --- 3. Erasure-coded chunk durability. -----------------------------
	fmt.Println("3) RS(4,2) sharded chunk store vs two disk failures")
	store, err := efdedup.NewShardedChunkStore(4, 2)
	if err != nil {
		return err
	}
	payload := bytes.Repeat([]byte("edge data worth protecting "), 500)
	chunker, err := efdedup.NewFixedChunker(2048)
	if err != nil {
		return err
	}
	sig, err := efdedup.SketchStream(payload, chunker, efdedup.DefaultMinHashSize)
	if err != nil {
		return err
	}
	fmt.Printf("   sketched payload into a %d-slot MinHash signature\n", sig.Size())

	// Store the payload as chunks.
	var ids []efdedup.ChunkID
	data := payload
	for len(data) > 0 {
		n := 2048
		if n > len(data) {
			n = len(data)
		}
		piece := data[:n]
		data = data[n:]
		id := efdedup.SumChunk(piece)
		if err := store.Put(id, piece); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	store.FailDisk(0)
	store.FailDisk(3)
	var rebuilt []byte
	for _, id := range ids {
		chunkData, err := store.Get(id)
		if err != nil {
			return err
		}
		rebuilt = append(rebuilt, chunkData...)
	}
	fmt.Printf("   destroyed 2/6 disks; restored %d bytes intact=%v at %.2fx storage (replication γ=3 would cost 3x)\n",
		len(rebuilt), bytes.Equal(rebuilt, payload), store.Overhead())
	return nil
}
