// Reliability: the fault-tolerance machinery of EF-dedup, exercised
// end to end.
//
// The paper leans on two reliability mechanisms and names a third as
// future work:
//
//  1. the D2-ring index replicates chunk hashes (γ=2), so dedup keeps
//     working when an index node dies;
//  2. Cassandra-style membership changes are seamless — nodes join and
//     leave without downtime;
//  3. erasure-coded chunk replicas cut the storage cost of durability
//     (Sec. VII future work).
//
// This example kills an index replica mid-run, grows the ring and
// rebalances, stores chunks in an RS(4,2) sharded store and destroys two
// disks, then partitions a ring-mode agent from its entire index through
// the chaos fabric — everything keeps working: the agent downgrades to
// cloud-assisted lookups, recovers when the partition heals, and the
// backup restores byte-identical.
//
//	go run ./examples/reliability
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"efdedup"
	"efdedup/internal/kvstore"
	"efdedup/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	nw := transport.NewMemNetwork()

	// --- 1. A replicated D2-ring index that survives node loss. -------
	fmt.Println("1) replicated index vs node failure")
	nodes := make([]*efdedup.IndexNode, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		node, err := efdedup.NewIndexNode(efdedup.IndexNodeConfig{})
		if err != nil {
			return err
		}
		addrs[i] = fmt.Sprintf("kv-%d", i)
		l, err := nw.Listen(addrs[i])
		if err != nil {
			return err
		}
		node.Serve(l)
		nodes[i] = node
	}
	idx, err := efdedup.NewIndexCluster(efdedup.IndexClusterConfig{
		Members:           addrs,
		ReplicationFactor: 2,
		WriteConsistency:  kvstore.All,
		Network:           nw,
	})
	if err != nil {
		return err
	}
	defer idx.Close()

	keys := make([][]byte, 100)
	vals := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("chunk-hash-%03d", i))
		vals[i] = []byte("meta")
	}
	if err := idx.BatchPut(ctx, keys, vals); err != nil {
		return err
	}
	nodes[1].Close() // kill one replica
	found, err := idx.BatchHas(ctx, keys)
	if err != nil {
		return err
	}
	hits := 0
	for _, ok := range found {
		if ok {
			hits++
		}
	}
	fmt.Printf("   killed kv-1; %d/100 hashes still resolvable (RF=2)\n\n", hits)

	// --- 2. Seamless membership change. --------------------------------
	fmt.Println("2) join a node, rebalance, decommission another")
	newNode, err := efdedup.NewIndexNode(efdedup.IndexNodeConfig{})
	if err != nil {
		return err
	}
	l, err := nw.Listen("kv-new")
	if err != nil {
		return err
	}
	newNode.Serve(l)
	defer newNode.Close()
	if err := idx.AddMember("kv-new"); err != nil {
		return err
	}
	if err := idx.RemoveMember(addrs[1]); err != nil { // drop the dead one
		return err
	}
	if err := idx.Rebalance(ctx); err != nil {
		return err
	}
	fmt.Printf("   ring is now %v; new node holds %d entries after rebalance\n\n",
		idx.Members(), newNode.Len())

	// --- 3. Erasure-coded chunk durability. -----------------------------
	fmt.Println("3) RS(4,2) sharded chunk store vs two disk failures")
	store, err := efdedup.NewShardedChunkStore(4, 2)
	if err != nil {
		return err
	}
	payload := bytes.Repeat([]byte("edge data worth protecting "), 500)
	chunker, err := efdedup.NewFixedChunker(2048)
	if err != nil {
		return err
	}
	sig, err := efdedup.SketchStream(payload, chunker, efdedup.DefaultMinHashSize)
	if err != nil {
		return err
	}
	fmt.Printf("   sketched payload into a %d-slot MinHash signature\n", sig.Size())

	// Store the payload as chunks.
	var ids []efdedup.ChunkID
	data := payload
	for len(data) > 0 {
		n := 2048
		if n > len(data) {
			n = len(data)
		}
		piece := data[:n]
		data = data[n:]
		id := efdedup.SumChunk(piece)
		if err := store.Put(id, piece); err != nil {
			return err
		}
		ids = append(ids, id)
	}
	store.FailDisk(0)
	store.FailDisk(3)
	var rebuilt []byte
	for _, id := range ids {
		chunkData, err := store.Get(id)
		if err != nil {
			return err
		}
		rebuilt = append(rebuilt, chunkData...)
	}
	fmt.Printf("   destroyed 2/6 disks; restored %d bytes intact=%v at %.2fx storage (replication γ=3 would cost 3x)\n\n",
		len(rebuilt), bytes.Equal(rebuilt, payload), store.Overhead())

	// --- 4. Chaos: partition the agent from its ring mid-backup. --------
	fmt.Println("4) scripted partition vs agent graceful degradation")
	return chaosStage(ctx)
}

// chaosStage runs a fresh ring-mode deployment through a scripted
// partition: the agent loses its whole index mid-run, downgrades to
// cloud-assisted lookups, and recovers once the fabric heals.
func chaosStage(ctx context.Context) error {
	mem := transport.NewMemNetwork()
	fab := efdedup.NewChaosFabric(efdedup.ChaosConfig{Seed: 42})
	defer fab.Close()
	ringNW := fab.NetworkFor("ring", mem)
	cloudNW := fab.NetworkFor("cloud", mem)
	edgeNW := fab.NetworkFor("edge", mem)

	cloudSrv, err := efdedup.NewCloudServer(efdedup.CloudServerConfig{})
	if err != nil {
		return err
	}
	defer cloudSrv.Close()
	l, err := cloudNW.Listen("cloud")
	if err != nil {
		return err
	}
	cloudSrv.Serve(l)

	var members []string
	for i := 0; i < 3; i++ {
		node, err := efdedup.NewIndexNode(efdedup.IndexNodeConfig{})
		if err != nil {
			return err
		}
		defer node.Close()
		addr := fmt.Sprintf("ring-kv-%d", i)
		lk, err := ringNW.Listen(addr)
		if err != nil {
			return err
		}
		node.Serve(lk)
		members = append(members, addr)
	}

	idx, err := efdedup.NewIndexCluster(efdedup.IndexClusterConfig{
		Members:           members,
		ReplicationFactor: 2,
		Network:           edgeNW,
		CallTimeout:       100 * time.Millisecond,
		Retry:             efdedup.RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, Seed: 1},
		Breaker:           efdedup.BreakerConfig{FailureThreshold: 3, OpenFor: 50 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer idx.Close()

	cloud, err := efdedup.DialCloudWithPolicy(ctx, edgeNW, "cloud",
		efdedup.RetryPolicy{MaxAttempts: 3}, efdedup.BreakerConfig{})
	if err != nil {
		return err
	}
	defer cloud.Close()

	a, err := efdedup.NewAgent(efdedup.AgentConfig{
		Name:  "edge-agent",
		Mode:  efdedup.ModeRing,
		Index: idx,
		Cloud: cloud,
	})
	if err != nil {
		return err
	}

	data := make([]byte, 256*1024)
	rand.New(rand.NewSource(7)).Read(data)

	if _, err := a.ProcessBytes(ctx, "healthy", data); err != nil {
		return err
	}
	fmt.Printf("   healthy stream processed; degraded=%v\n", a.Degraded())

	// Script the outage: cut edge↔ring now, heal in 300ms.
	fab.PartitionBoth("edge", "ring")
	fab.Schedule(300*time.Millisecond, func(f *efdedup.ChaosFabric) { f.HealAll() })

	rep, err := a.ProcessBytes(ctx, "mid-partition", data[:128*1024])
	if err != nil {
		return fmt.Errorf("stream aborted under partition: %w", err)
	}
	fmt.Printf("   partitioned stream survived: downgrades=%d degraded-lookups=%d (breakers: %v)\n",
		rep.Downgrades, rep.DegradedLookups, breakerSummary(idx.BreakerStates()))

	// Process follow-up streams until the agent walks back up the ladder.
	for i := 0; a.Degraded() && i < 100; i++ {
		time.Sleep(20 * time.Millisecond)
		if _, err := a.ProcessBytes(ctx, fmt.Sprintf("probe-%d", i), data[:16*1024]); err != nil {
			return err
		}
	}
	tot := a.Totals()
	fmt.Printf("   healed: degraded=%v downgrades=%d recoveries=%d\n", a.Degraded(), tot.Downgrades, tot.Recoveries)

	restored, err := cloud.Restore(ctx, "mid-partition")
	if err != nil {
		return err
	}
	fmt.Printf("   mid-partition backup restores intact=%v\n", bytes.Equal(restored, data[:128*1024]))
	return nil
}

// breakerSummary counts breaker states across the ring's addresses.
func breakerSummary(states map[string]efdedup.BreakerState) map[efdedup.BreakerState]int {
	out := make(map[efdedup.BreakerState]int)
	for _, s := range states {
		out[s]++
	}
	return out
}
