// Edge cluster comparison: a miniature of the paper's Sec. V-A testbed
// experiment. Twelve edge nodes in six edge clouds process an IoT
// accelerometer workload under the three strategies — EF-dedup with SMART
// partitioning, cloud-assisted, cloud-only — and the example prints the
// throughput/WAN-traffic table the paper's Fig. 5(a) summarizes.
//
//	go run ./examples/edgecluster
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"efdedup"
)

const (
	nodes     = 12
	sites     = 6
	rings     = 4
	chunkSize = 2048
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildSystem derives the SNOD2 instance from the accel dataset's known
// similarity structure: node i records participant i%5's motion, so nodes
// of the same participant are highly correlated.
func buildSystem(d interface {
	File(int, int) []byte
}, specs []efdedup.TestbedNode) *efdedup.System {
	const (
		participants = 5
		sharedPool   = 60.0
		groupPool    = 80.0
		sharedProb   = 0.3
		uniqueProb   = 0.05
	)
	pools := []float64{sharedPool}
	for p := 0; p < participants; p++ {
		pools = append(pools, groupPool)
	}
	chunksPerRun := float64(len(d.File(0, 0)) / chunkSize)
	srcs := make([]efdedup.Source, nodes)
	for i := range srcs {
		probs := make([]float64, len(pools))
		probs[0] = sharedProb
		probs[1+i%participants] = 1 - sharedProb - uniqueProb
		srcs[i] = efdedup.Source{ID: i, Rate: chunksPerRun, Probs: probs}
	}
	cost := make([][]float64, nodes)
	for i := range cost {
		cost[i] = make([]float64, nodes)
		for j := range cost[i] {
			if i == j {
				continue
			}
			if specs[i].Site == specs[j].Site {
				cost[i][j] = 0.00085
			} else {
				cost[i][j] = 0.005
			}
		}
	}
	return &efdedup.System{
		PoolSizes: pools, Sources: srcs,
		T: 1, Gamma: 2, Alpha: 0.1, NetCost: cost,
	}
}

func run() error {
	specs := make([]efdedup.TestbedNode, nodes)
	for i := range specs {
		specs[i] = efdedup.TestbedNode{
			Name: fmt.Sprintf("edge-%02d", i),
			Site: fmt.Sprintf("metro-%d", i%sites),
		}
	}
	accel := efdedup.NewAccelDataset(7)
	accel.SegmentsPerFile = 256 // ~512 KiB per file
	accel.SegmentBytes = chunkSize

	sys := buildSystem(accel, specs)
	ringsSMART, cost, err := efdedup.Partition(efdedup.SMART, sys, rings)
	if err != nil {
		return err
	}
	fmt.Printf("SMART partition (predicted aggregate cost %.0f):\n", cost.Aggregate)
	for i, r := range ringsSMART {
		fmt.Printf("  ring %d: nodes %v\n", i, r)
	}
	fmt.Println()

	table := []struct {
		name  string
		mode  efdedup.AgentMode
		rings [][]int
	}{
		{"EF-dedup (SMART)", efdedup.ModeRing, ringsSMART},
		{"Cloud-assisted", efdedup.ModeCloudAssisted, nil},
		{"Cloud-only", efdedup.ModeCloudOnly, nil},
	}
	fmt.Printf("%-18s %12s %12s %12s\n", "strategy", "MB/s", "WAN MB", "dedup ratio")
	for _, row := range table {
		res, err := runStrategy(specs, accel.File, row.rings, row.mode)
		if err != nil {
			return fmt.Errorf("%s: %w", row.name, err)
		}
		fmt.Printf("%-18s %12.1f %12.2f %12.2f\n",
			row.name, res.AggregateThroughput()/1e6,
			float64(res.UploadedBytes)/1e6, res.DedupRatio())
	}
	return nil
}

func runStrategy(specs []efdedup.TestbedNode, file func(int, int) []byte, rings [][]int, mode efdedup.AgentMode) (efdedup.RunResult, error) {
	tb, err := efdedup.NewTestbed(efdedup.TestbedConfig{
		Nodes:     specs,
		ChunkSize: chunkSize,
		EdgeLink:  efdedup.Link{Delay: 5 * time.Millisecond, Bandwidth: 10e6},
		WANLink:   efdedup.Link{Delay: 12200 * time.Microsecond, Bandwidth: 2.5e6},
		IntraSiteLink: efdedup.Link{
			Delay: 850 * time.Microsecond, Bandwidth: 10e6,
		},
	})
	if err != nil {
		return efdedup.RunResult{}, err
	}
	defer tb.Close()
	if err := tb.ApplyPartition(rings, mode); err != nil {
		return efdedup.RunResult{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	return tb.Run(ctx, file, 1)
}
