// Estimation: Algorithm 1 on sampled files, the paper's Sec. III-A
// validation. The example samples files from two correlated sources,
// measures the real dedup ratio of every subset with chunk-level
// deduplication, fits the chunk-pool model and prints measured vs
// estimated ratios side by side (the content of the paper's Fig. 2).
//
//	go run ./examples/estimation
package main

import (
	"fmt"
	"log"

	"efdedup"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Ground-truth generative model: two sources, overlapping pools.
	truth := &efdedup.System{
		PoolSizes: []float64{500, 250},
		Sources: []efdedup.Source{
			{ID: 0, Rate: 1, Probs: []float64{0.55, 0.35}},
			{ID: 1, Rate: 1, Probs: []float64{0.25, 0.65}},
		},
		T: 1, Gamma: 1,
	}
	const chunkSize = 1024
	ds, err := efdedup.NewPoolDataset(truth, chunkSize, 400, 5)
	if err != nil {
		return err
	}
	samples := map[int][][]byte{
		0: {ds.File(0, 0), ds.File(0, 1), ds.File(0, 2)},
		1: {ds.File(1, 0), ds.File(1, 1), ds.File(1, 2)},
	}

	chunker, err := efdedup.NewFixedChunker(chunkSize)
	if err != nil {
		return err
	}
	gt, err := efdedup.MeasureSamples(samples, chunker)
	if err != nil {
		return err
	}
	est, err := efdedup.FitModel(gt, efdedup.FitConfig{K: 3})
	if err != nil {
		return err
	}

	fmt.Printf("fitted %d pools in %d sweeps, MSE %.4f\n", len(est.PoolSizes), est.Iterations, est.MSE)
	fmt.Printf("pool sizes: %.0f\n", est.PoolSizes)
	for i, p := range est.Probs {
		fmt.Printf("source %d characteristic vector: %.3f\n", gt.Sources[i], p)
	}

	fmt.Printf("\n%-14s %10s %10s %8s\n", "subset", "measured", "estimated", "err%")
	for j, subset := range gt.Subsets {
		pred := est.PredictRatio(gt, subset)
		ids := make([]int, len(subset))
		for k, s := range subset {
			ids[k] = gt.Sources[s]
		}
		fmt.Printf("%-14s %10.3f %10.3f %7.1f%%\n",
			fmt.Sprint(ids), gt.Ratios[j], pred, (pred/gt.Ratios[j]-1)*100)
	}
	fmt.Printf("\nmean relative error: %.2f%% (paper reports < 4%%)\n",
		est.MeanRelativeError(gt)*100)
	return nil
}
