// Quickstart: the EF-dedup pipeline end to end, in process.
//
// It builds a 4-node edge testbed with two sites and a central cloud,
// partitions the nodes into D2-rings with SMART, runs a correlated
// workload through the dedup agents and prints what crossed the WAN.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"efdedup"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Describe the sources with the chunk-pool model: nodes 0 and 2
	// emit Linux-VM-like chunks (pool 0), nodes 1 and 3 Windows-like
	// chunks (pool 1); ~10% of each flow is private noise.
	sys := &efdedup.System{
		PoolSizes: []float64{800, 800},
		Sources: []efdedup.Source{
			{ID: 0, Rate: 200, Probs: []float64{0.9, 0}},
			{ID: 1, Rate: 200, Probs: []float64{0, 0.9}},
			{ID: 2, Rate: 200, Probs: []float64{0.9, 0}},
			{ID: 3, Rate: 200, Probs: []float64{0, 0.9}},
		},
		T:     1,
		Gamma: 2,   // index replication factor
		Alpha: 0.1, // network/storage trade-off
		// Lookup cost in seconds: siteA = {0,1}, siteB = {2,3}.
		NetCost: [][]float64{
			{0, 0.001, 0.005, 0.005},
			{0.001, 0, 0.005, 0.005},
			{0.005, 0.005, 0, 0.001},
			{0.005, 0.005, 0.001, 0},
		},
	}

	// 2. Solve SNOD2: which nodes should deduplicate together?
	rings, cost, err := efdedup.Partition(efdedup.SMART, sys, 2)
	if err != nil {
		return err
	}
	fmt.Printf("SMART chose %d D2-rings: %v\n", len(rings), rings)
	fmt.Printf("predicted cost: storage %.0f chunks + α·network %.3f = %.1f\n\n",
		cost.Storage, cost.Network, cost.Aggregate)

	// 3. Deploy: per-node index daemons, shaped links, a cloud store.
	tb, err := efdedup.NewTestbed(efdedup.TestbedConfig{
		Nodes: []efdedup.TestbedNode{
			{Name: "edge-0", Site: "siteA"},
			{Name: "edge-1", Site: "siteA"},
			{Name: "edge-2", Site: "siteB"},
			{Name: "edge-3", Site: "siteB"},
		},
		ChunkSize: 2048,
		EdgeLink:  efdedup.Link{Delay: 2 * time.Millisecond, Bandwidth: 50e6},
		WANLink:   efdedup.Link{Delay: 12 * time.Millisecond, Bandwidth: 5e6},
	})
	if err != nil {
		return err
	}
	defer tb.Close()
	if err := tb.ApplyPartition(rings, efdedup.ModeRing); err != nil {
		return err
	}

	// 4. Generate the workload from the same model and push it through
	// the agents in parallel.
	ds, err := efdedup.NewPoolDataset(sys, 2048, 200, 42)
	if err != nil {
		return err
	}
	res, err := tb.Run(context.Background(), ds.File, 2)
	if err != nil {
		return err
	}

	fmt.Printf("processed      %8.2f MB of input\n", float64(res.InputBytes)/1e6)
	fmt.Printf("shipped to WAN %8.2f MB (dedup ratio %.2f)\n",
		float64(res.UploadedBytes)/1e6, res.DedupRatio())
	fmt.Printf("throughput     %8.2f MB/s aggregate over %d nodes\n",
		res.AggregateThroughput()/1e6, len(res.PerNode))
	fmt.Printf("inter-site     %8.2f MB of index+upload traffic\n",
		float64(res.InterSiteBytes)/1e6)
	fmt.Printf("cloud stored   %8.2f MB of unique chunks\n",
		float64(tb.CloudStats().UniqueBytes)/1e6)
	return nil
}
