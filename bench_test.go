// Root benchmark harness: one testing.B benchmark per figure of the
// paper's evaluation (Sec. V). Each benchmark regenerates its figure at CI
// scale and reports the figure's headline quantities as custom benchmark
// metrics, so `go test -bench=. -benchmem` doubles as a regression check
// on the reproduced shapes. Full-size figures come from
// `go run ./cmd/efdedup-bench -fig all`.
package efdedup_test

import (
	"testing"

	"efdedup"
	"efdedup/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, Seed: 1}
}

// runFig regenerates a figure once per iteration.
func runFig(b *testing.B, id string) *experiments.Figure {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = experiments.Run(id, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// lastY returns the final point of a named series.
func lastY(b *testing.B, fig *experiments.Figure, name string) float64 {
	b.Helper()
	s := fig.Get(name)
	if s == nil || len(s.Y) == 0 {
		b.Fatalf("%s: series %q missing", fig.ID, name)
	}
	return s.Y[len(s.Y)-1]
}

// BenchmarkFig2Estimation regenerates Fig. 2 (measured vs estimated dedup
// ratios) and reports the fit quality.
func BenchmarkFig2Estimation(b *testing.B) {
	fig := runFig(b, "fig2")
	// Mean relative error over the combination grid.
	meas, est := fig.Get("measured"), fig.Get("estimated")
	sum := 0.0
	for i := range meas.Y {
		d := est.Y[i]/meas.Y[i] - 1
		if d < 0 {
			d = -d
		}
		sum += d
	}
	b.ReportMetric(sum/float64(len(meas.Y))*100, "fit-err-%")
}

// BenchmarkFig3WarmStart regenerates Fig. 3 and reports the warm-start
// speedup in fit sweeps.
func BenchmarkFig3WarmStart(b *testing.B) {
	fig := runFig(b, "fig3")
	sweeps := fig.Get("fit sweeps")
	b.ReportMetric(sweeps.Y[0], "cold-sweeps")
	b.ReportMetric(sweeps.Y[len(sweeps.Y)-1], "warm-sweeps")
}

// BenchmarkFig5aThroughput regenerates Fig. 5(a) and reports the final
// smart-vs-cloud throughput ratios on dataset 1.
func BenchmarkFig5aThroughput(b *testing.B) {
	fig := runFig(b, "fig5a")
	smart := lastY(b, fig, "smart/accel")
	b.ReportMetric(smart/lastY(b, fig, "cloud-assisted/accel"), "x-vs-assisted")
	b.ReportMetric(smart/lastY(b, fig, "cloud-only/accel"), "x-vs-cloudonly")
}

// BenchmarkFig5bLatency regenerates Fig. 5(b) and reports how much smart's
// lead widens from the lowest to the highest WAN RTT.
func BenchmarkFig5bLatency(b *testing.B) {
	fig := runFig(b, "fig5b")
	smart, assisted := fig.Get("smart"), fig.Get("cloud-assisted")
	leadLow := smart.Y[0] / assisted.Y[0]
	leadHigh := smart.Y[len(smart.Y)-1] / assisted.Y[len(assisted.Y)-1]
	b.ReportMetric(leadHigh/leadLow, "lead-widening")
}

// BenchmarkFig5cRatio regenerates Fig. 5(c) and reports how close one-ring
// SMART gets to the cloud dedup-ratio bound.
func BenchmarkFig5cRatio(b *testing.B) {
	fig := runFig(b, "fig5c")
	b.ReportMetric(lastY(b, fig, "smart")/lastY(b, fig, "cloud bound")*100, "pct-of-bound")
}

// BenchmarkFig6aTradeoff regenerates Fig. 6(a) and reports the span of the
// two cost curves across ring counts.
func BenchmarkFig6aTradeoff(b *testing.B) {
	fig := runFig(b, "fig6a")
	storage, network := fig.Get("storage U"), fig.Get("network V")
	b.ReportMetric(storage.Y[len(storage.Y)-1]/storage.Y[0], "storage-growth")
	if network.Y[len(network.Y)-1] > 0 {
		b.ReportMetric(network.Y[0]/network.Y[len(network.Y)-1], "network-growth")
	}
}

// BenchmarkFig6bCrossover regenerates Fig. 6(b) and reports the
// large-ring/small-ring throughput ratio at the lowest and highest
// inter-edge-cloud RTT.
func BenchmarkFig6bCrossover(b *testing.B) {
	fig := runFig(b, "fig6b")
	for i, s := range fig.Series {
		unit := "big/small-lowRTT"
		if i == len(fig.Series)-1 {
			unit = "big/small-highRTT"
		} else if i > 0 {
			continue
		}
		b.ReportMetric(s.Y[len(s.Y)-1]/s.Y[0], unit)
	}
}

// BenchmarkFig6cAblation regenerates Fig. 6(c) and reports the baselines'
// cost multiples over SMART (paper: 1.26x / 1.31x).
func BenchmarkFig6cAblation(b *testing.B) {
	fig := runFig(b, "fig6c")
	agg := fig.Get("aggregate cost")
	b.ReportMetric(agg.Y[1]/agg.Y[0], "netonly-x")
	b.ReportMetric(agg.Y[2]/agg.Y[0], "deduponly-x")
}

// BenchmarkFig7aScale regenerates Fig. 7(a) and reports SMART's cost
// saving over the baselines at the largest simulated scale.
func BenchmarkFig7aScale(b *testing.B) {
	fig := runFig(b, "fig7a")
	smart := lastY(b, fig, "smart")
	b.ReportMetric((1-smart/lastY(b, fig, "network-only"))*100, "save-vs-net-%")
	b.ReportMetric((1-smart/lastY(b, fig, "dedup-only"))*100, "save-vs-dedup-%")
}

// BenchmarkFig7bAlpha regenerates Fig. 7(b) and reports how SMART's
// network cost shrinks as α grows.
func BenchmarkFig7bAlpha(b *testing.B) {
	fig := runFig(b, "fig7b")
	v := fig.Get("smart network V")
	if v.Y[len(v.Y)-1] > 0 {
		b.ReportMetric(v.Y[0]/v.Y[len(v.Y)-1], "V-shrink")
	}
}

// BenchmarkExtChunking regenerates the variable-chunking extension figure
// and reports the CDC advantage after a prefix shift.
func BenchmarkExtChunking(b *testing.B) {
	fig := runFig(b, "ext-cdc")
	fixed, gear := fig.Get("fixed"), fig.Get("gear-cdc")
	last := len(fixed.Y) - 1
	b.ReportMetric(gear.Y[last]/fixed.Y[last], "cdc-advantage")
}

// BenchmarkExtErasure regenerates the erasure extension figure and reports
// RS(4,2)'s storage saving vs replication at equal failure tolerance.
func BenchmarkExtErasure(b *testing.B) {
	fig := runFig(b, "ext-erasure")
	rs := fig.Get("reed-solomon")
	b.ReportMetric(rs.Y[len(rs.Y)-1], "rs-overhead-x")
}

// BenchmarkPublicPartitionSMART measures the production solver on a
// mid-size instance through the public API.
func BenchmarkPublicPartitionSMART(b *testing.B) {
	sys, err := efdedup.BuildSimSystem(efdedup.NewSimScenario(60, 0.001, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := efdedup.Partition(efdedup.SMART, sys, 10); err != nil {
			b.Fatal(err)
		}
	}
}
