package main

import (
	"strings"
	"testing"
)

func baselineMap(rs ...result) map[string]result {
	m := make(map[string]result, len(rs))
	for _, r := range rs {
		m[key(r.Name, r.CPU)] = r
	}
	return m
}

func TestRegressionsGate(t *testing.T) {
	old := baselineMap(
		result{Name: "BenchmarkAgent", CPU: 4, MBPerS: 1000, AllocsPerOp: 100},
		result{Name: "BenchmarkRestore", CPU: 4, MBPerS: 500, AllocsPerOp: 50},
	)

	t.Run("within threshold passes", func(t *testing.T) {
		fresh := []result{
			{Name: "BenchmarkAgent", CPU: 4, MBPerS: 950, AllocsPerOp: 105},
			{Name: "BenchmarkRestore", CPU: 4, MBPerS: 540, AllocsPerOp: 48},
		}
		if regs := regressions(old, fresh, 10); len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("throughput drop beyond threshold fails", func(t *testing.T) {
		fresh := []result{{Name: "BenchmarkAgent", CPU: 4, MBPerS: 850, AllocsPerOp: 100}}
		regs := regressions(old, fresh, 10)
		if len(regs) != 1 {
			t.Fatalf("regressions = %v, want one MB/s entry", regs)
		}
		if !strings.Contains(regs[0], "MB/s 1000.00 -> 850.00") {
			t.Errorf("message %q does not name the throughput drop", regs[0])
		}
	})

	t.Run("alloc rise beyond threshold fails", func(t *testing.T) {
		fresh := []result{{Name: "BenchmarkRestore", CPU: 4, MBPerS: 500, AllocsPerOp: 60}}
		regs := regressions(old, fresh, 10)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op 50 -> 60") {
			t.Fatalf("regressions = %v, want one allocs entry", regs)
		}
	})

	t.Run("both dimensions report independently", func(t *testing.T) {
		fresh := []result{{Name: "BenchmarkAgent", CPU: 4, MBPerS: 700, AllocsPerOp: 200}}
		if regs := regressions(old, fresh, 10); len(regs) != 2 {
			t.Fatalf("regressions = %v, want both MB/s and allocs entries", regs)
		}
	})

	t.Run("new benchmark without baseline is skipped", func(t *testing.T) {
		fresh := []result{{Name: "BenchmarkBrandNew", CPU: 4, MBPerS: 1}}
		if regs := regressions(old, fresh, 10); len(regs) != 0 {
			t.Fatalf("new benchmark flagged: %v", regs)
		}
	})

	t.Run("legacy unnamed baseline rows still gate", func(t *testing.T) {
		legacy := baselineMap(result{Name: "", CPU: 8, MBPerS: 400, AllocsPerOp: 10})
		fresh := []result{{Name: "BenchmarkAgent", CPU: 8, MBPerS: 300, AllocsPerOp: 10}}
		if regs := regressions(legacy, fresh, 10); len(regs) != 1 {
			t.Fatalf("regressions = %v, want the legacy row matched by CPU", regs)
		}
	})
}

func TestParseBenchLineExtraMetrics(t *testing.T) {
	r, ok := parseBenchLine("BenchmarkCloudRestore-8  5  21063202 ns/op  912.42 MB/s  9.000 containers/stream  123456 B/op  789 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkCloudRestore" || r.CPU != 8 || r.MBPerS != 912.42 || r.AllocsPerOp != 789 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Extra["containers/stream"] != 9 {
		t.Fatalf("extra metric lost: %+v", r.Extra)
	}
	if _, ok := parseBenchLine("ok  	efdedup/internal/agent	1.2s"); ok {
		t.Fatal("non-benchmark line parsed")
	}
}
