// Command benchcompare runs the end-to-end agent benchmark and compares
// it against the committed baseline in BENCH_agent.json, printing a
// benchstat-style old/new/delta table. With -update it rewrites the
// baseline from the fresh run instead.
//
//	go run ./tools/benchcompare            # compare against baseline
//	go run ./tools/benchcompare -update    # re-record the baseline
//
// The tool is deliberately stdlib-only and tolerant of missing CPU
// points: a baseline recorded with -cpu 1,4,8 compares whatever subset
// the fresh run produced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

type result struct {
	CPU         int     `json:"cpu"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type baseline struct {
	Benchmark string   `json:"benchmark"`
	Package   string   `json:"package"`
	Note      string   `json:"note"`
	Results   []result `json:"results"`
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
// BenchmarkAgentProcessStream-8  3  89116745 ns/op  376.52 MB/s  3187298 B/op  20156 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\w+?)(?:-(\d+))?\s+\d+\s+(\d+(?:\.\d+)?) ns/op\s+(\d+(?:\.\d+)?) MB/s\s+(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	log.SetFlags(0)
	var (
		bench     = flag.String("bench", "BenchmarkAgentProcessStream", "benchmark to run (anchored regexp)")
		pkg       = flag.String("pkg", "./internal/agent", "package containing the benchmark")
		cpus      = flag.String("cpu", "1,4,8", "GOMAXPROCS values, passed to -cpu")
		benchtime = flag.String("benchtime", "5x", "passed to -benchtime")
		file      = flag.String("baseline", "BENCH_agent.json", "baseline file")
		update    = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	)
	flag.Parse()

	fresh, err := runBench(*bench, *pkg, *cpus, *benchtime)
	if err != nil {
		log.Fatal(err)
	}
	if len(fresh) == 0 {
		log.Fatalf("no benchmark results parsed for %s in %s", *bench, *pkg)
	}

	if *update {
		base := baseline{Benchmark: *bench, Package: *pkg, Results: fresh}
		if old, err := readBaseline(*file); err == nil {
			base.Note = old.Note // keep the recorded provenance note
		}
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*file, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("baseline %s updated (%d results)", *file, len(fresh))
		return
	}

	base, err := readBaseline(*file)
	if err != nil {
		log.Fatalf("read baseline: %v (run with -update to record one)", err)
	}
	old := make(map[int]result, len(base.Results))
	for _, r := range base.Results {
		old[r.CPU] = r
	}

	fmt.Printf("%-8s %14s %14s %8s %14s %14s %8s\n",
		"cpu", "old MB/s", "new MB/s", "delta", "old allocs", "new allocs", "delta")
	for _, nw := range fresh {
		o, ok := old[nw.CPU]
		if !ok {
			fmt.Printf("%-8d %14s %14.2f %8s\n", nw.CPU, "-", nw.MBPerS, "-")
			continue
		}
		fmt.Printf("%-8d %14.2f %14.2f %+7.1f%% %14d %14d %+7.1f%%\n",
			nw.CPU, o.MBPerS, nw.MBPerS, pct(o.MBPerS, nw.MBPerS),
			o.AllocsPerOp, nw.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(nw.AllocsPerOp)))
	}
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func runBench(bench, pkg, cpus, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+bench+"$", "-benchtime", benchtime, "-cpu", cpus, "-benchmem", pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("bench run failed: %v\n%s", err, out)
	}
	var results []result
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		cpu := 1
		if m[2] != "" {
			cpu, _ = strconv.Atoi(m[2])
		}
		ns, _ := strconv.ParseFloat(m[3], 64)
		mbs, _ := strconv.ParseFloat(m[4], 64)
		bpo, _ := strconv.ParseInt(m[5], 10, 64)
		apo, _ := strconv.ParseInt(m[6], 10, 64)
		results = append(results, result{
			CPU: cpu, NsPerOp: int64(ns), MBPerS: mbs, BytesPerOp: bpo, AllocsPerOp: apo,
		})
	}
	return results, nil
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	err = json.Unmarshal(buf, &b)
	return b, err
}
