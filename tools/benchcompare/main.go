// Command benchcompare runs a benchmark and compares it against a
// committed baseline (BENCH_agent.json, BENCH_restore.json, ...),
// printing a benchstat-style old/new/delta table. With -update it
// rewrites the baseline from the fresh run instead.
//
//	go run ./tools/benchcompare            # compare agent bench vs baseline
//	go run ./tools/benchcompare -update    # re-record the baseline
//	go run ./tools/benchcompare -bench 'BenchmarkCloudRestore(Serial)?' \
//	    -pkg ./internal/cloudstore -baseline BENCH_restore.json
//
// The tool is deliberately stdlib-only and tolerant of missing CPU
// points: a baseline recorded with -cpu 1,4,8 compares whatever subset
// the fresh run produced. Result lines are parsed token-wise, so custom
// b.ReportMetric units (e.g. containers/stream) are captured into an
// "extra" map and compared alongside the standard columns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Name        string             `json:"name,omitempty"`
	CPU         int                `json:"cpu"`
	NsPerOp     int64              `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type baseline struct {
	Benchmark string   `json:"benchmark"`
	Package   string   `json:"package"`
	Note      string   `json:"note"`
	Results   []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	var (
		bench     = flag.String("bench", "BenchmarkAgentProcessStream", "benchmark to run (anchored regexp)")
		pkg       = flag.String("pkg", "./internal/agent", "package containing the benchmark")
		cpus      = flag.String("cpu", "1,4,8", "GOMAXPROCS values, passed to -cpu")
		benchtime = flag.String("benchtime", "5x", "passed to -benchtime")
		file       = flag.String("baseline", "BENCH_agent.json", "baseline file")
		update     = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
		maxRegress = flag.Float64("max-regress", 0, "exit non-zero when MB/s drops or allocs/op rises by more than this percent vs the baseline (0 disables; CI uses 10)")
	)
	flag.Parse()

	fresh, err := runBench(*bench, *pkg, *cpus, *benchtime)
	if err != nil {
		log.Fatal(err)
	}
	if len(fresh) == 0 {
		log.Fatalf("no benchmark results parsed for %s in %s", *bench, *pkg)
	}

	if *update {
		base := baseline{Benchmark: *bench, Package: *pkg, Results: fresh}
		if old, err := readBaseline(*file); err == nil {
			base.Note = old.Note // keep the recorded provenance note
		}
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*file, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("baseline %s updated (%d results)", *file, len(fresh))
		return
	}

	base, err := readBaseline(*file)
	if err != nil {
		log.Fatalf("read baseline: %v (run with -update to record one)", err)
	}
	old := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		old[key(r.Name, r.CPU)] = r
	}

	fmt.Printf("%-34s %-4s %12s %12s %8s %12s %12s %8s\n",
		"benchmark", "cpu", "old MB/s", "new MB/s", "delta", "old allocs", "new allocs", "delta")
	for _, nw := range fresh {
		o, ok := old[key(nw.Name, nw.CPU)]
		if !ok {
			// Baselines recorded before names were stored carry "".
			o, ok = old[key("", nw.CPU)]
		}
		if !ok {
			fmt.Printf("%-34s %-4d %12s %12.2f %8s\n", nw.Name, nw.CPU, "-", nw.MBPerS, "-")
			continue
		}
		fmt.Printf("%-34s %-4d %12.2f %12.2f %+7.1f%% %12d %12d %+7.1f%%%s\n",
			nw.Name, nw.CPU, o.MBPerS, nw.MBPerS, pct(o.MBPerS, nw.MBPerS),
			o.AllocsPerOp, nw.AllocsPerOp, pct(float64(o.AllocsPerOp), float64(nw.AllocsPerOp)),
			extraDelta(o.Extra, nw.Extra))
	}

	if *maxRegress > 0 {
		regs := regressions(old, fresh, *maxRegress)
		if len(regs) > 0 {
			fmt.Println()
			for _, r := range regs {
				fmt.Println("REGRESSION:", r)
			}
			os.Exit(1)
		}
	}
}

// regressions lists comparisons beyond maxPct: throughput lost or
// allocations gained relative to the baseline. Fresh results with no
// baseline row are skipped — a new benchmark cannot regress. Benchmark
// noise is absorbed by the threshold, not averaged away, so CI should
// pair this with a benchtime long enough to settle.
func regressions(old map[string]result, fresh []result, maxPct float64) []string {
	var out []string
	for _, nw := range fresh {
		o, ok := old[key(nw.Name, nw.CPU)]
		if !ok {
			o, ok = old[key("", nw.CPU)]
		}
		if !ok {
			continue
		}
		if o.MBPerS > 0 {
			if drop := -pct(o.MBPerS, nw.MBPerS); drop > maxPct {
				out = append(out, fmt.Sprintf("%s (cpu=%d): MB/s %.2f -> %.2f (-%.1f%%, limit %.1f%%)",
					nw.Name, nw.CPU, o.MBPerS, nw.MBPerS, drop, maxPct))
			}
		}
		if o.AllocsPerOp > 0 {
			if rise := pct(float64(o.AllocsPerOp), float64(nw.AllocsPerOp)); rise > maxPct {
				out = append(out, fmt.Sprintf("%s (cpu=%d): allocs/op %d -> %d (+%.1f%%, limit %.1f%%)",
					nw.Name, nw.CPU, o.AllocsPerOp, nw.AllocsPerOp, rise, maxPct))
			}
		}
	}
	return out
}

func key(name string, cpu int) string { return name + "/" + strconv.Itoa(cpu) }

// extraDelta renders custom-metric comparisons (units sorted for a
// stable table), e.g. "  containers/stream 31.0->9.0".
func extraDelta(old, nw map[string]float64) string {
	if len(nw) == 0 {
		return ""
	}
	units := make([]string, 0, len(nw))
	for u := range nw {
		units = append(units, u)
	}
	sort.Strings(units)
	var sb strings.Builder
	for _, u := range units {
		if o, ok := old[u]; ok {
			fmt.Fprintf(&sb, "  %s %.1f->%.1f", u, o, nw[u])
		} else {
			fmt.Fprintf(&sb, "  %s %.1f", u, nw[u])
		}
	}
	return sb.String()
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func runBench(bench, pkg, cpus, benchtime string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^("+bench+")$", "-benchtime", benchtime, "-cpu", cpus, "-benchmem", pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("bench run failed: %v\n%s", err, out)
	}
	var results []result
	for _, line := range strings.Split(string(out), "\n") {
		if r, ok := parseBenchLine(strings.TrimSpace(line)); ok {
			results = append(results, r)
		}
	}
	return results, nil
}

// parseBenchLine parses one `go test -bench` result row token-wise:
//
//	BenchmarkCloudRestore-8  5  21063202 ns/op  912.42 MB/s  9.000 containers/stream  123456 B/op  789 allocs/op
//
// Known units fill the fixed fields; anything else (b.ReportMetric
// output) lands in Extra keyed by its unit.
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name, cpu := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			cpu, name = n, name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return result{}, false // second token must be the iteration count
	}
	r := result{Name: name, CPU: cpu}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = int64(val)
			seen = true
		case "MB/s":
			r.MBPerS = val
		case "B/op":
			r.BytesPerOp = int64(val)
		case "allocs/op":
			r.AllocsPerOp = int64(val)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = val
		}
	}
	return r, seen
}

func readBaseline(path string) (baseline, error) {
	var b baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	err = json.Unmarshal(buf, &b)
	return b, err
}
