package efdedup

import (
	"io"
	"net/http"

	"efdedup/internal/metrics"
)

// This file exposes the observability layer: the process-global metrics
// registry every component (agents, kv nodes, cloud store, gossip,
// faultnet) records into, and the HTTP surface the daemons mount on
// -metrics-addr. Embedders use it to scrape their own processes or to
// print per-stage breakdowns after a run, the way efdedup-bench does.

type (
	// MetricsRegistry holds counters, gauges and log-linear-bucket
	// latency histograms; all operations are lock-free on the hot path.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is one exported series (counter, gauge or
	// histogram with quantiles).
	MetricsSnapshot = metrics.Snapshot
	// LatencyHistogram records values into log-linear buckets and
	// reports p50/p90/p95/p99 with bounded relative error.
	LatencyHistogram = metrics.Histogram
)

// Metrics returns the process-global registry all efdedup components
// record into.
func Metrics() *MetricsRegistry { return metrics.Default() }

// NewMetricsRegistry builds an isolated registry (tests, embedders that
// scope metrics per subsystem).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsHandler serves the registry as Prometheus text (default) or
// JSON (?format=json / Accept: application/json).
func MetricsHandler(r *MetricsRegistry) http.Handler { return metrics.Handler(r) }

// MetricsMux is the full observability mux daemons mount on
// -metrics-addr: /metrics, /metrics.json and net/http/pprof under
// /debug/pprof/.
func MetricsMux(r *MetricsRegistry) *http.ServeMux { return metrics.NewMux(r) }

// ServeMetrics serves the observability mux on addr until the listener
// fails; run it in a goroutine.
func ServeMetrics(addr string, r *MetricsRegistry) error {
	return metrics.ListenAndServe(addr, r)
}

// WriteMetricsBreakdown prints the human-readable per-stage latency
// breakdown (count/mean/p50/p95/p99/max per histogram, then non-zero
// scalars) — the table efdedup-bench appends to its figure output.
func WriteMetricsBreakdown(w io.Writer, r *MetricsRegistry) { r.WriteBreakdown(w) }
