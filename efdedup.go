// Package efdedup is the public API of the EF-dedup library: collaborative
// data deduplication at the network edge, reproducing Li et al., "EF-dedup:
// Enabling Collaborative Data Deduplication at the Network Edge" (ICDCS
// 2019).
//
// The library decomposes into the paper's pipeline:
//
//  1. Model the sources (chunk pools + characteristic vectors): System,
//     Source, and the Theorem 1 quantities (DedupRatio, UniqueChunks,
//     NetworkCost).
//  2. Estimate the model from sampled files (Algorithm 1): MeasureSamples
//     and FitModel, or the end-to-end NewPlan.
//  3. Partition edge nodes into D2-rings (SNOD2 / Algorithm 2): SMART and
//     the baseline partitioners.
//  4. Deploy: a distributed KV index per ring, a Dedup Agent per node and
//     a central cloud store — either in-process via Testbed, or as real
//     daemons via the cmd/ binaries.
//
// The quickstart in examples/quickstart walks the full pipeline on a
// synthetic workload.
package efdedup

import (
	"efdedup/internal/core"
	"efdedup/internal/estimate"
	"efdedup/internal/model"
	"efdedup/internal/partition"
)

// Core model types (paper Sec. II, Theorem 1).
type (
	// System is a SNOD2 instance: chunk pools, sources, window,
	// replication factor γ, trade-off α and the network cost matrix.
	System = model.System
	// Source is one edge node's statistical description: its chunk rate
	// and characteristic vector over the chunk pools.
	Source = model.Source
	// PartitionCost is the SNOD2 objective value of a partition.
	PartitionCost = model.PartitionCost
)

// Planning types (the paper's full pipeline).
type (
	// PlanInput configures NewPlan: per-node samples, rates, network
	// costs, window, γ, α and the ring budget.
	PlanInput = core.PlanInput
	// Plan is a deployment decision: fitted model, SNOD2 system, D2-ring
	// assignment and its analytic cost.
	Plan = core.Plan
)

// Estimation types (Algorithm 1, Sec. III-A).
type (
	// GroundTruth holds measured dedup ratios over sampled source
	// subsets.
	GroundTruth = estimate.GroundTruth
	// Estimate is a fitted chunk-pool model.
	Estimate = estimate.Estimate
	// FitConfig tunes the Algorithm 1 search.
	FitConfig = estimate.Config
)

// Partitioner is a SNOD2 solver: it splits a System's sources into at most
// m D2-rings.
type Partitioner = partition.Algorithm

// Built-in partitioners (Sec. III-C and the paper's baselines).
var (
	// SMART is the production solver: Eq. 13 greedy seeds refined by
	// local search, best-of-portfolio under the full SNOD2 objective.
	SMART Partitioner = partition.Portfolio{}
	// SMARTGreedy is the plain Algorithm 2 greedy, exactly as published.
	SMARTGreedy Partitioner = partition.SmartGreedy{}
	// SMARTEqualSize is the load-balanced variant with ⌈N/M⌉ capacity.
	SMARTEqualSize Partitioner = partition.EqualSize{}
	// MatchingPartitioner is the hierarchical minimum-weight-matching
	// accelerator of Sec. III-C.
	MatchingPartitioner Partitioner = partition.Matching{}
	// GroupPackPartitioner packs whole content clusters into rings —
	// a coarse-grained seed that excels when sources have dominant
	// chunk pools (one of SMART's portfolio seeds).
	GroupPackPartitioner Partitioner = partition.GroupPack{}
	// NetworkOnly ignores the storage term (baseline of Fig. 6(c)).
	NetworkOnly Partitioner = partition.SmartGreedy{Obj: partition.NetworkOnlyObjective}
	// DedupOnly ignores the network term (baseline of Fig. 6(c)).
	DedupOnly Partitioner = partition.SmartGreedy{Obj: partition.DedupOnlyObjective}
	// Optimal enumerates every partition (≤ 12 sources) for gap studies.
	Optimal Partitioner = partition.BruteForce{}
)

// NewPlan runs the paper's full pipeline: measure the samples, fit the
// chunk-pool model (Algorithm 1), assemble the SNOD2 instance and
// partition the nodes into D2-rings (SMART).
func NewPlan(in PlanInput) (*Plan, error) { return core.MakePlan(in) }

// Partition solves SNOD2 for an explicit system with the given solver and
// ring budget, returning the rings and their cost.
func Partition(p Partitioner, sys *System, rings int) ([][]int, PartitionCost, error) {
	return partition.Evaluate(p, sys, rings)
}

// MeasureSamples chunk-deduplicates every subset of the sampled sources
// and records the ground-truth dedup ratios Algorithm 1 fits against.
func MeasureSamples(samples map[int][][]byte, chunker Chunker) (*GroundTruth, error) {
	return estimate.Measure(samples, chunker)
}

// FitModel runs Algorithm 1's parameter search against measured ground
// truth.
func FitModel(gt *GroundTruth, cfg FitConfig) (*Estimate, error) {
	return estimate.Fit(gt, cfg)
}

// FitModelAuto additionally searches the model order K (1..maxK) —
// Algorithm 1's full output includes the number of chunk pools.
func FitModelAuto(gt *GroundTruth, maxK int, cfg FitConfig) (*Estimate, error) {
	return estimate.FitAuto(gt, maxK, cfg)
}
