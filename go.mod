module efdedup

go 1.23
