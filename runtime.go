package efdedup

import (
	"context"
	"net"

	"efdedup/internal/agent"
	"efdedup/internal/chunk"
	"efdedup/internal/cloudstore"
	"efdedup/internal/cluster"
	"efdedup/internal/faultnet"
	"efdedup/internal/kvstore"
	"efdedup/internal/netem"
	"efdedup/internal/retrypolicy"
)

// Chunker splits byte streams into content-addressed chunks.
type Chunker = chunk.Chunker

// Chunk is one unit of deduplication.
type Chunk = chunk.Chunk

// ChunkID is the SHA-256 content address of a chunk.
type ChunkID = chunk.ID

// NewFixedChunker returns a duperemove-style equal-size chunker.
func NewFixedChunker(size int) (Chunker, error) { return chunk.NewFixedChunker(size) }

// NewContentDefinedChunker returns a gear-hash CDC chunker (the paper's
// "variable-size chunking" extension) with min/average/max chunk sizes.
func NewContentDefinedChunker(min, target, max int) (Chunker, error) {
	return chunk.NewGearChunker(min, target, max)
}

// Agent types: the per-node dedup pipeline (paper Sec. IV).
type (
	// Agent deduplicates streams under one of the three strategies.
	Agent = agent.Agent
	// AgentConfig assembles an Agent.
	AgentConfig = agent.Config
	// AgentMode selects the strategy.
	AgentMode = agent.Mode
	// AgentReport summarizes one processed stream.
	AgentReport = agent.Report
)

// Agent modes, mirroring the paper's comparison.
const (
	// ModeRing deduplicates against the D2-ring's distributed index.
	ModeRing = agent.ModeRing
	// ModeCloudAssisted looks chunk hashes up in the cloud's index.
	ModeCloudAssisted = agent.ModeCloudAssisted
	// ModeCloudOnly ships raw data; the cloud deduplicates.
	ModeCloudOnly = agent.ModeCloudOnly
)

// NewAgent builds a dedup agent.
func NewAgent(cfg AgentConfig) (*Agent, error) { return agent.New(cfg) }

// Index types: the distributed KV store holding a ring's dedup index.
type (
	// IndexNode is one storage replica daemon.
	IndexNode = kvstore.Node
	// IndexNodeConfig configures a replica (WAL path etc.).
	IndexNodeConfig = kvstore.NodeConfig
	// IndexCluster is the client-side coordinator over a ring's
	// replicas.
	IndexCluster = kvstore.Cluster
	// IndexClusterConfig configures replication factor, consistency and
	// membership.
	IndexClusterConfig = kvstore.ClusterConfig
	// Consistency selects ONE / QUORUM / ALL.
	Consistency = kvstore.Consistency
)

// Consistency levels.
const (
	One    = kvstore.One
	Quorum = kvstore.Quorum
	All    = kvstore.All
)

// NewIndexNode starts (but does not serve) a storage replica.
func NewIndexNode(cfg IndexNodeConfig) (*IndexNode, error) { return kvstore.NewNode(cfg) }

// NewIndexCluster builds a coordinator over a ring's replicas.
func NewIndexCluster(cfg IndexClusterConfig) (*IndexCluster, error) {
	return kvstore.NewCluster(cfg)
}

// Cloud types: the central content-addressed store.
type (
	// CloudServer is the central store daemon.
	CloudServer = cloudstore.Server
	// CloudServerConfig configures it.
	CloudServerConfig = cloudstore.Config
	// CloudClient talks to a CloudServer.
	CloudClient = cloudstore.Client
	// CloudStats summarizes what the cloud stored.
	CloudStats = cloudstore.Stats
	// RestoreOptions tunes the streaming container-restore pipeline.
	RestoreOptions = cloudstore.RestoreOptions
	// RestoreStats reports what one streaming restore moved.
	RestoreStats = cloudstore.RestoreStats
)

// NewCloudServer builds a central store.
func NewCloudServer(cfg CloudServerConfig) (*CloudServer, error) {
	return cloudstore.NewServer(cfg)
}

// Dialer abstracts how clients reach services: real TCP
// (transport.TCPNetwork), the in-memory fabric, or a netem-shaped view.
type Dialer interface {
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// DialCloud connects a client to a cloud store.
func DialCloud(ctx context.Context, d Dialer, addr string) (*CloudClient, error) {
	return cloudstore.Dial(ctx, d, addr)
}

// Network emulation types (the NetEm stand-in).
type (
	// Link is a delay+bandwidth path description.
	Link = netem.Link
	// Topology maps node addresses to sites and site pairs to links.
	Topology = netem.Topology
)

// NewTopology builds a topology with a fallback link for unspecified site
// pairs.
func NewTopology(fallback Link) *Topology { return netem.NewTopology(fallback) }

// Resilience types: the retry/backoff/circuit-breaker layer under every
// RPC path and the chaos fabric that exercises it.
type (
	// RetryPolicy tunes capped exponential backoff with jitter.
	RetryPolicy = retrypolicy.Policy
	// BreakerConfig tunes the per-address circuit breaker.
	BreakerConfig = retrypolicy.BreakerConfig
	// BreakerState is closed / open / half-open.
	BreakerState = retrypolicy.BreakerState
	// ChaosFabric injects scripted partitions and seeded stochastic
	// faults into any Listen/Dial network.
	ChaosFabric = faultnet.Fabric
	// ChaosConfig tunes the fabric's stochastic injectors.
	ChaosConfig = faultnet.Config
)

// ErrChaosInjected marks every failure a ChaosFabric fabricates.
var ErrChaosInjected = faultnet.ErrInjected

// NewChaosFabric builds an empty chaos fabric; wrap networks with
// NetworkFor and script faults with Partition/Schedule.
func NewChaosFabric(cfg ChaosConfig) *ChaosFabric { return faultnet.NewFabric(cfg) }

// DialCloudWithPolicy connects a cloud client with explicit retry and
// breaker settings.
func DialCloudWithPolicy(ctx context.Context, d Dialer, addr string, p RetryPolicy, b BreakerConfig) (*CloudClient, error) {
	return cloudstore.DialWithPolicy(ctx, d, addr, p, b)
}

// Testbed types: the in-process deployment harness (the stand-in for the
// paper's OpenStack + EC2 testbed).
type (
	// Testbed is a running in-process deployment.
	Testbed = cluster.Cluster
	// TestbedConfig lays out nodes, sites and links.
	TestbedConfig = cluster.Config
	// TestbedNode places one edge node at a site.
	TestbedNode = cluster.NodeSpec
	// RunResult aggregates one workload run.
	RunResult = cluster.RunResult
)

// NewTestbed starts the deployment's always-on services.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) { return cluster.New(cfg) }

// SumChunk returns the content address (SHA-256) of a chunk payload.
func SumChunk(data []byte) ChunkID { return chunk.Sum(data) }
