package efdedup_test

import (
	"fmt"

	"efdedup"
)

// ExamplePartition solves SNOD2 for four edge nodes: two content groups
// crossing two sites. SMART balances storage against network cost.
func ExamplePartition() {
	sys := &efdedup.System{
		PoolSizes: []float64{1000, 1000},
		Sources: []efdedup.Source{
			{ID: 0, Rate: 100, Probs: []float64{0.9, 0}},
			{ID: 1, Rate: 100, Probs: []float64{0, 0.9}},
			{ID: 2, Rate: 100, Probs: []float64{0.9, 0}},
			{ID: 3, Rate: 100, Probs: []float64{0, 0.9}},
		},
		T: 1, Gamma: 2, Alpha: 0.1,
		// ν_ij in ms: sites {0,1} and {2,3}, 5 ms across.
		NetCost: [][]float64{
			{0, 1, 5, 5},
			{1, 0, 5, 5},
			{5, 5, 0, 1},
			{5, 5, 1, 0},
		},
	}
	rings, _, err := efdedup.Partition(efdedup.SMART, sys, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("rings:", len(rings))
	// Every node is in exactly one ring.
	covered := 0
	for _, r := range rings {
		covered += len(r)
	}
	fmt.Println("nodes covered:", covered)
	// Output:
	// rings: 2
	// nodes covered: 4
}

// ExampleSystem_DedupRatio evaluates Theorem 1 for one source and for the
// source clustered with an identical twin: clustering correlated sources
// improves the expected dedup ratio.
func ExampleSystem_DedupRatio() {
	sys := &efdedup.System{
		PoolSizes: []float64{500},
		Sources: []efdedup.Source{
			{ID: 0, Rate: 400, Probs: []float64{0.95}},
			{ID: 1, Rate: 400, Probs: []float64{0.95}},
		},
		T: 1, Gamma: 1,
	}
	solo := sys.DedupRatio([]int{0})
	pair := sys.DedupRatio([]int{0, 1})
	fmt.Println("pair beats solo:", pair > solo)
	// Output:
	// pair beats solo: true
}

// ExampleMeasureSamples measures ground-truth dedup ratios the way
// Algorithm 1 does, on two tiny in-memory samples.
func ExampleMeasureSamples() {
	chunker, err := efdedup.NewFixedChunker(4)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	samples := map[int][][]byte{
		0: {[]byte("aaaabbbb")}, // chunks: aaaa, bbbb
		1: {[]byte("aaaacccc")}, // chunks: aaaa, cccc
	}
	gt, err := efdedup.MeasureSamples(samples, chunker)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The pair {0,1} has 4 chunks, 3 unique.
	for i, subset := range gt.Subsets {
		if len(subset) == 2 {
			fmt.Printf("pair ratio: %.3f\n", gt.Ratios[i])
		}
	}
	// Output:
	// pair ratio: 1.333
}

// ExampleNewErasureCodec protects a chunk with RS(3,2) and reconstructs it
// after losing two shards.
func ExampleNewErasureCodec() {
	codec, err := efdedup.NewErasureCodec(3, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	data := []byte("a chunk worth protecting")
	shards, err := codec.Split(data)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	shards[1], shards[3] = nil, nil // lose any two
	back, err := codec.Join(shards, len(data))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(back))
	// Output:
	// a chunk worth protecting
}
