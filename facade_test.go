package efdedup_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"efdedup"
	"efdedup/internal/transport"
)

// TestFacadeAgentAndCloud builds agents and the cloud through the public
// constructors only.
func TestFacadeAgentAndCloud(t *testing.T) {
	nw := transport.NewMemNetwork()
	cloud, err := efdedup.NewCloudServer(efdedup.CloudServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := nw.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	cloud.Serve(l)
	defer cloud.Close()

	node, err := efdedup.NewIndexNode(efdedup.IndexNodeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lk, err := nw.Listen("kv-0")
	if err != nil {
		t.Fatal(err)
	}
	node.Serve(lk)
	defer node.Close()

	idx, err := efdedup.NewIndexCluster(efdedup.IndexClusterConfig{
		Members:          []string{"kv-0"},
		Network:          nw,
		ReadConsistency:  efdedup.One,
		WriteConsistency: efdedup.One,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	cloudClient, err := efdedup.DialCloud(context.Background(), nw, "cloud")
	if err != nil {
		t.Fatal(err)
	}
	defer cloudClient.Close()

	a, err := efdedup.NewAgent(efdedup.AgentConfig{
		Name:  "facade-agent",
		Mode:  efdedup.ModeRing,
		Index: idx,
		Cloud: cloudClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("facade agent data block!"), 2048)
	rep, err := a.ProcessStream(context.Background(), "f", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if rep.InputBytes != int64(len(data)) {
		t.Fatalf("InputBytes = %d", rep.InputBytes)
	}
	if rep.DedupRatio() <= 1 {
		t.Fatalf("repetitive stream ratio %v, want > 1", rep.DedupRatio())
	}
	if got := a.Mode().String(); got != "ring" {
		t.Fatalf("Mode = %q", got)
	}
	st := cloud.Stats()
	if st.UniqueChunks == 0 {
		t.Fatal("cloud stored nothing")
	}
}

func TestFacadeErasureAndMinHash(t *testing.T) {
	codec, err := efdedup.NewErasureCodec(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("some chunk to protect with parity shards")
	shards, err := codec.Split(data)
	if err != nil {
		t.Fatal(err)
	}
	shards[0], shards[4] = nil, nil
	back, err := codec.Join(shards, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("erasure round trip failed through the facade")
	}

	ids := make([]efdedup.ChunkID, 50)
	for i := range ids {
		ids[i] = efdedup.SumChunk([]byte(fmt.Sprintf("payload-%d", i)))
	}
	sig, err := efdedup.SketchChunks(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	sig2, err := efdedup.SketchChunks(ids, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sim, _ := sig.Jaccard(sig2); sim != 1 {
		t.Fatalf("identical sets similarity %v", sim)
	}
}

func TestFacadeSimilarityMatrix(t *testing.T) {
	chunker, err := efdedup.NewFixedChunker(256)
	if err != nil {
		t.Fatal(err)
	}
	samples := map[int][][]byte{
		1: {bytes.Repeat([]byte("AAAA"), 2000)},
		5: {bytes.Repeat([]byte("AAAA"), 2000)},
		9: {bytes.Repeat([]byte("ZZZZ"), 2000)},
	}
	ids, sim, err := efdedup.SimilarityMatrix(samples, chunker, efdedup.DefaultMinHashSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 5 || ids[2] != 9 {
		t.Fatalf("ids = %v", ids)
	}
	if sim[0][1] != 1 {
		t.Errorf("identical sources similarity %v, want 1", sim[0][1])
	}
	if sim[0][2] != 0 {
		t.Errorf("disjoint sources similarity %v, want 0", sim[0][2])
	}
}

func TestFacadeTopology(t *testing.T) {
	topo := efdedup.NewTopology(efdedup.Link{Delay: 5 * time.Millisecond})
	topo.SetSymmetricLink("a", "b", efdedup.Link{Delay: 10 * time.Millisecond})
	if l := topo.LinkBetween("a", "b"); l.Delay != 10*time.Millisecond {
		t.Fatalf("LinkBetween = %v", l.Delay)
	}
}

func TestFacadePartitionerNames(t *testing.T) {
	algos := []efdedup.Partitioner{
		efdedup.SMART, efdedup.SMARTGreedy, efdedup.SMARTEqualSize,
		efdedup.MatchingPartitioner, efdedup.GroupPackPartitioner,
		efdedup.NetworkOnly, efdedup.DedupOnly, efdedup.Optimal,
	}
	seen := map[string]bool{}
	for _, a := range algos {
		name := a.Name()
		if name == "" || seen[name] {
			t.Fatalf("duplicate or empty partitioner name %q", name)
		}
		seen[name] = true
	}
}

func TestFacadeConsistencyValues(t *testing.T) {
	if efdedup.One.String() != "ONE" || efdedup.Quorum.String() != "QUORUM" || efdedup.All.String() != "ALL" {
		t.Fatal("consistency constants mismatched")
	}
}
